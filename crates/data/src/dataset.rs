//! In-memory labelled dataset with batching utilities.

use bytes::{BufMut, BytesMut};
use ff_tensor::{Tensor, TensorError};
use rand::seq::SliceRandom;
use rand::Rng;

/// One mini-batch: images plus labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Batch images, `[batch, ...image_shape]`.
    pub images: Tensor,
    /// Per-sample class labels.
    pub labels: Vec<usize>,
}

/// An in-memory labelled image dataset.
///
/// Images are stored as a single tensor whose first dimension is the sample
/// index; `image_shape` describes the per-sample shape (e.g. `[1, 28, 28]`).
///
/// # Examples
///
/// ```
/// use ff_data::Dataset;
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let images = Tensor::ones(&[4, 1, 2, 2]);
/// let ds = Dataset::new(images, vec![0, 1, 0, 1], 2)?;
/// assert_eq!(ds.len(), 4);
/// assert_eq!(ds.flattened()?.shape(), &[4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from an image tensor and labels.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] when the label count does not
    /// match the number of images or a label is out of range.
    pub fn new(
        images: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, TensorError> {
        if images.rows() != labels.len() {
            return Err(TensorError::InvalidParameter {
                message: format!("{} images but {} labels", images.rows(), labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(TensorError::InvalidParameter {
                message: format!("label {bad} out of range for {num_classes} classes"),
            });
        }
        Ok(Dataset {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Per-sample image shape (everything after the sample dimension).
    pub fn image_shape(&self) -> &[usize] {
        &self.images.shape()[1..]
    }

    /// Number of scalar features per sample.
    pub fn feature_count(&self) -> usize {
        self.image_shape().iter().product()
    }

    /// The full image tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Images flattened to `[n, features]` (for MLPs and FF label embedding).
    ///
    /// # Errors
    ///
    /// Propagates reshape errors (cannot happen for well-formed datasets).
    pub fn flattened(&self) -> Result<Tensor, TensorError> {
        self.images.reshape(&[self.len(), self.feature_count()])
    }

    /// Splits the dataset into mini-batches, optionally shuffling sample order.
    ///
    /// The final batch may be smaller than `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn batches<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        shuffle: bool,
        rng: &mut R,
    ) -> Vec<Batch> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        if shuffle {
            order.shuffle(rng);
        }
        order
            .chunks(batch_size)
            .map(|chunk| {
                let images = self
                    .images
                    .select_rows(chunk)
                    .expect("indices in range by construction");
                let labels = chunk.iter().map(|&i| self.labels[i]).collect();
                Batch { images, labels }
            })
            .collect()
    }

    /// Deterministic fixed-size mini-batch iterator: batches are cut from
    /// the dataset **in storage order**, each one copying only its own rows
    /// (no shuffle-index materialisation, no full-dataset clone up front).
    ///
    /// This is the iteration mode serving warm-up and the bench harness use,
    /// where reproducible batch composition matters and the whole epoch may
    /// never be consumed. The final batch may be smaller than `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use ff_data::Dataset;
    /// use ff_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), ff_tensor::TensorError> {
    /// let ds = Dataset::new(Tensor::ones(&[5, 4]), vec![0, 1, 0, 1, 0], 2)?;
    /// let sizes: Vec<usize> = ds.iter_batches(2).map(|b| b.labels.len()).collect();
    /// assert_eq!(sizes, vec![2, 2, 1]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn iter_batches(&self, batch_size: usize) -> MiniBatches<'_> {
        assert!(batch_size > 0, "batch_size must be positive");
        MiniBatches {
            dataset: self,
            batch_size,
            next: 0,
        }
    }

    /// Takes the first `count` samples as a new dataset (used to shrink
    /// experiments for fast CI runs).
    ///
    /// # Errors
    ///
    /// Propagates slicing errors when `count > len()`.
    pub fn take(&self, count: usize) -> Result<Self, TensorError> {
        let images = self.images.slice_rows(0, count)?;
        Ok(Dataset {
            images,
            labels: self.labels[..count].to_vec(),
            num_classes: self.num_classes,
        })
    }

    /// Serialises the images as `u8` pixels (0–255) for compact storage,
    /// assuming inputs are normalised to `[0, 1]`.
    pub fn to_u8_bytes(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(self.images.len());
        for &v in self.images.data() {
            buf.put_u8((v.clamp(0.0, 1.0) * 255.0).round() as u8);
        }
        buf
    }
}

/// Iterator over deterministic, in-order mini-batches of a [`Dataset`].
///
/// Created by [`Dataset::iter_batches`]; each step slices a contiguous row
/// range out of the dataset's image tensor.
#[derive(Debug, Clone)]
pub struct MiniBatches<'a> {
    dataset: &'a Dataset,
    batch_size: usize,
    next: usize,
}

impl Iterator for MiniBatches<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.next >= self.dataset.len() {
            return None;
        }
        let start = self.next;
        let end = (start + self.batch_size).min(self.dataset.len());
        self.next = end;
        let images = self
            .dataset
            .images
            .slice_rows(start, end)
            .expect("range clamped to dataset length");
        let labels = self.dataset.labels[start..end].to_vec();
        Some(Batch { images, labels })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.dataset.len().saturating_sub(self.next);
        let batches = remaining.div_ceil(self.batch_size);
        (batches, Some(batches))
    }
}

impl ExactSizeIterator for MiniBatches<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        let images =
            Tensor::from_vec(&[6, 1, 2, 2], (0..24).map(|x| x as f32 / 24.0).collect()).unwrap();
        Dataset::new(images, vec![0, 1, 2, 0, 1, 2], 3).unwrap()
    }

    #[test]
    fn construction_validates_labels() {
        let images = Tensor::ones(&[2, 4]);
        assert!(Dataset::new(images.clone(), vec![0], 2).is_err());
        assert!(Dataset::new(images.clone(), vec![0, 5], 2).is_err());
        assert!(Dataset::new(images, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn shape_queries() {
        let ds = dataset();
        assert_eq!(ds.len(), 6);
        assert!(!ds.is_empty());
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.image_shape(), &[1, 2, 2]);
        assert_eq!(ds.feature_count(), 4);
        assert_eq!(ds.flattened().unwrap().shape(), &[6, 4]);
    }

    #[test]
    fn batching_covers_all_samples() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let batches = ds.batches(4, true, &mut rng);
        assert_eq!(batches.len(), 2);
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, 6);
        assert_eq!(batches[0].images.shape()[0], 4);
        assert_eq!(batches[1].images.shape()[0], 2);
    }

    #[test]
    fn unshuffled_batches_preserve_order() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let batches = ds.batches(3, false, &mut rng);
        assert_eq!(batches[0].labels, vec![0, 1, 2]);
        assert_eq!(batches[1].labels, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_panics() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(0);
        ds.batches(0, false, &mut rng);
    }

    #[test]
    fn iter_batches_is_deterministic_and_in_order() {
        let ds = dataset();
        let batches: Vec<Batch> = ds.iter_batches(4).collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].labels, vec![0, 1, 2, 0]);
        assert_eq!(batches[1].labels, vec![1, 2]);
        assert_eq!(batches[0].images.shape(), &[4, 1, 2, 2]);
        assert_eq!(batches[1].images.shape(), &[2, 1, 2, 2]);
        // Two passes yield identical batches.
        let again: Vec<Batch> = ds.iter_batches(4).collect();
        assert_eq!(batches, again);
        // Rows match the underlying tensor exactly.
        assert_eq!(
            batches[1].images.data(),
            &ds.images().data()[4 * 4..6 * 4],
            "second batch holds rows 4..6"
        );
    }

    #[test]
    fn iter_batches_size_hint_is_exact() {
        let ds = dataset();
        let mut it = ds.iter_batches(4);
        assert_eq!(it.len(), 2);
        it.next();
        assert_eq!(it.len(), 1);
        it.next();
        assert_eq!(it.len(), 0);
        assert!(it.next().is_none());
        // Batch size larger than the dataset yields one full-dataset batch.
        assert_eq!(ds.iter_batches(100).count(), 1);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn iter_batches_zero_batch_size_panics() {
        dataset().iter_batches(0);
    }

    #[test]
    fn take_shrinks_dataset() {
        let ds = dataset().take(2).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(dataset().take(100).is_err());
    }

    #[test]
    fn byte_export_has_one_byte_per_pixel() {
        let ds = dataset();
        let bytes = ds.to_u8_bytes();
        assert_eq!(bytes.len(), 24);
    }
}
