//! Procedural MNIST-like and CIFAR-10-like datasets.

use crate::Dataset;
use ff_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic dataset generators.
///
/// # Examples
///
/// ```
/// use ff_data::SyntheticConfig;
///
/// let cfg = SyntheticConfig::small().with_seed(7);
/// assert_eq!(cfg.seed, 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of training samples.
    pub train_size: usize,
    /// Number of test samples.
    pub test_size: usize,
    /// Standard deviation of the per-pixel Gaussian noise added to each
    /// class prototype (controls task difficulty).
    pub noise_std: f32,
    /// Maximum spatial jitter (in pixels) applied to each sample.
    pub max_shift: usize,
    /// RNG seed; the same seed always yields the same dataset.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            train_size: 2000,
            test_size: 500,
            noise_std: 0.25,
            max_shift: 2,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// A small configuration suitable for unit tests and doc examples.
    pub fn small() -> Self {
        SyntheticConfig {
            train_size: 200,
            test_size: 80,
            noise_std: 0.2,
            max_shift: 1,
            seed: 42,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the sample counts.
    pub fn with_sizes(mut self, train: usize, test: usize) -> Self {
        self.train_size = train;
        self.test_size = test;
        self
    }

    /// Overrides the noise level.
    pub fn with_noise(mut self, noise_std: f32) -> Self {
        self.noise_std = noise_std;
        self
    }
}

const NUM_CLASSES: usize = 10;

/// Builds one smooth class prototype of `channels × size × size` pixels from a
/// handful of Gaussian blobs whose positions depend on the class index.
fn class_prototype(class: usize, channels: usize, size: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut proto = vec![0.0f32; channels * size * size];
    let blobs = 3 + class % 3;
    for blob in 0..blobs {
        let cx = rng.gen_range(0.2..0.8) * size as f32;
        let cy = rng.gen_range(0.2..0.8) * size as f32;
        let sigma = rng.gen_range(0.08..0.2) * size as f32;
        let channel = (class + blob) % channels;
        let amplitude = 0.6 + 0.4 * ((class * 7 + blob * 3) % 5) as f32 / 4.0;
        for y in 0..size {
            for x in 0..size {
                let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                proto[(channel * size + y) * size + x] +=
                    amplitude * (-d2 / (2.0 * sigma * sigma)).exp();
            }
        }
    }
    // clamp to [0, 1]
    for v in &mut proto {
        *v = v.min(1.0);
    }
    proto
}

/// Applies an integer circular shift to a `channels × size × size` image.
fn shift_image(src: &[f32], channels: usize, size: usize, dx: isize, dy: isize) -> Vec<f32> {
    let mut out = vec![0.0f32; src.len()];
    for c in 0..channels {
        for y in 0..size {
            for x in 0..size {
                let sy = (y as isize - dy).rem_euclid(size as isize) as usize;
                let sx = (x as isize - dx).rem_euclid(size as isize) as usize;
                out[(c * size + y) * size + x] = src[(c * size + sy) * size + sx];
            }
        }
    }
    out
}

fn generate(config: &SyntheticConfig, channels: usize, size: usize) -> (Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let prototypes: Vec<Vec<f32>> = (0..NUM_CLASSES)
        .map(|c| class_prototype(c, channels, size, &mut rng))
        .collect();
    let make_split = |count: usize, rng: &mut StdRng| {
        let feature = channels * size * size;
        let mut data = Vec::with_capacity(count * feature);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = i % NUM_CLASSES;
            let shift = config.max_shift as isize;
            let dx = if shift > 0 {
                rng.gen_range(-shift..=shift)
            } else {
                0
            };
            let dy = if shift > 0 {
                rng.gen_range(-shift..=shift)
            } else {
                0
            };
            let shifted = shift_image(&prototypes[class], channels, size, dx, dy);
            for v in shifted {
                let noisy = v + config.noise_std * sample_normal(rng);
                data.push(noisy.clamp(0.0, 1.0));
            }
            labels.push(class);
        }
        let images = Tensor::from_vec(&[count, channels, size, size], data)
            .expect("generated shape is consistent");
        Dataset::new(images, labels, NUM_CLASSES).expect("labels in range by construction")
    };
    let train = make_split(config.train_size, &mut rng);
    let test = make_split(config.test_size, &mut rng);
    (train, test)
}

fn sample_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Generates the synthetic MNIST stand-in: 10 classes of 1×28×28 images.
///
/// Returns `(train, test)` datasets.
pub fn synthetic_mnist(config: &SyntheticConfig) -> (Dataset, Dataset) {
    generate(config, 1, 28)
}

/// Generates the synthetic CIFAR-10 stand-in: 10 classes of 3×32×32 images.
///
/// Returns `(train, test)` datasets.
pub fn synthetic_cifar10(config: &SyntheticConfig) -> (Dataset, Dataset) {
    generate(config, 3, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_shape_and_classes() {
        let (train, test) = synthetic_mnist(&SyntheticConfig::small());
        assert_eq!(train.len(), 200);
        assert_eq!(test.len(), 80);
        assert_eq!(train.image_shape(), &[1, 28, 28]);
        assert_eq!(train.num_classes(), 10);
        // all classes present
        for c in 0..10 {
            assert!(train.labels().contains(&c));
        }
    }

    #[test]
    fn cifar_shape() {
        let cfg = SyntheticConfig::small().with_sizes(50, 20);
        let (train, _) = synthetic_cifar10(&cfg);
        assert_eq!(train.image_shape(), &[3, 32, 32]);
    }

    #[test]
    fn pixels_are_normalised() {
        let (train, _) = synthetic_mnist(&SyntheticConfig::small());
        assert!(train.images().min_value() >= 0.0);
        assert!(train.images().max_value() <= 1.0);
    }

    #[test]
    fn same_seed_same_data() {
        let a = synthetic_mnist(&SyntheticConfig::small()).0;
        let b = synthetic_mnist(&SyntheticConfig::small()).0;
        assert_eq!(a.images().data(), b.images().data());
        let c = synthetic_mnist(&SyntheticConfig::small().with_seed(1)).0;
        assert_ne!(a.images().data(), c.images().data());
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // With low noise, a nearest-class-mean classifier should do well —
        // sanity check that the task is learnable.
        let cfg = SyntheticConfig {
            train_size: 400,
            test_size: 100,
            noise_std: 0.1,
            max_shift: 0,
            seed: 3,
        };
        let (train, test) = synthetic_mnist(&cfg);
        let feature = train.feature_count();
        let train_flat = train.flattened().unwrap();
        let mut means = vec![vec![0.0f32; feature]; 10];
        let mut counts = [0usize; 10];
        for (i, &label) in train.labels().iter().enumerate() {
            counts[label] += 1;
            for (m, v) in means[label].iter_mut().zip(train_flat.row(i)) {
                *m += v;
            }
        }
        for (c, mean) in means.iter_mut().enumerate() {
            for v in mean.iter_mut() {
                *v /= counts[c].max(1) as f32;
            }
        }
        let test_flat = test.flattened().unwrap();
        let mut correct = 0usize;
        for (i, &label) in test.labels().iter().enumerate() {
            let row = test_flat.row(i);
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f32 = row
                        .iter()
                        .zip(&means[a])
                        .map(|(x, m)| (x - m) * (x - m))
                        .sum();
                    let db: f32 = row
                        .iter()
                        .zip(&means[b])
                        .map(|(x, m)| (x - m) * (x - m))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.9, "nearest-mean accuracy {acc}");
    }

    #[test]
    fn config_builders() {
        let cfg = SyntheticConfig::default()
            .with_sizes(10, 5)
            .with_noise(0.5)
            .with_seed(9);
        assert_eq!(cfg.train_size, 10);
        assert_eq!(cfg.test_size, 5);
        assert_eq!(cfg.noise_std, 0.5);
        assert_eq!(cfg.seed, 9);
    }
}
