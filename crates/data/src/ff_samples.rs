//! Positive/negative sample construction for the Forward-Forward algorithm.
//!
//! Following Hinton (2022) and the FF-INT8 paper (Section III), labels are
//! embedded into the input by overwriting the first `num_classes` features
//! with a one-hot vector. Positive samples carry the true label, negative
//! samples carry a deliberately wrong label.

use ff_tensor::{Tensor, TensorError};
use rand::Rng;

/// Overwrites the first `num_classes` features of each flattened image with a
/// one-hot encoding of the corresponding label.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] when the label count does not
/// match the batch size, a label is out of range, or the images have fewer
/// features than `num_classes`.
///
/// # Examples
///
/// ```
/// use ff_data::embed_label;
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_tensor::TensorError> {
/// let images = Tensor::zeros(&[2, 12]);
/// let embedded = embed_label(&images, &[3, 7], 10)?;
/// assert_eq!(embedded.at2(0, 3)?, 1.0);
/// assert_eq!(embedded.at2(1, 7)?, 1.0);
/// # Ok(())
/// # }
/// ```
pub fn embed_label(
    images: &Tensor,
    labels: &[usize],
    num_classes: usize,
) -> Result<Tensor, TensorError> {
    let rows = images.rows();
    let cols = images.cols();
    if labels.len() != rows {
        return Err(TensorError::InvalidParameter {
            message: format!("{} labels for {} images", labels.len(), rows),
        });
    }
    if cols < num_classes {
        return Err(TensorError::InvalidParameter {
            message: format!("images have {cols} features, need at least {num_classes}"),
        });
    }
    let flat = images.reshape(&[rows, cols])?;
    let mut out = flat.clone();
    for (i, &label) in labels.iter().enumerate() {
        if label >= num_classes {
            return Err(TensorError::InvalidParameter {
                message: format!("label {label} out of range for {num_classes} classes"),
            });
        }
        let row = out.row_mut(i);
        for v in row.iter_mut().take(num_classes) {
            *v = 0.0;
        }
        row[label] = 1.0;
    }
    Ok(out)
}

/// Draws a wrong label for every sample, uniformly over the other classes.
///
/// # Panics
///
/// Panics if `num_classes < 2`.
pub fn make_negative_labels<R: Rng + ?Sized>(
    labels: &[usize],
    num_classes: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(
        num_classes >= 2,
        "need at least two classes to pick a wrong label"
    );
    labels
        .iter()
        .map(|&true_label| {
            let offset = rng.gen_range(1..num_classes);
            (true_label + offset) % num_classes
        })
        .collect()
}

/// Builds the positive and negative datasets for one batch of flattened
/// images: positive samples embed the true label, negative samples embed a
/// randomly chosen wrong label.
///
/// # Errors
///
/// Propagates [`embed_label`] errors.
pub fn positive_negative_sets<R: Rng + ?Sized>(
    images: &Tensor,
    labels: &[usize],
    num_classes: usize,
    rng: &mut R,
) -> Result<(Tensor, Tensor), TensorError> {
    let positive = embed_label(images, labels, num_classes)?;
    let wrong = make_negative_labels(labels, num_classes, rng);
    let negative = embed_label(images, &wrong, num_classes)?;
    Ok((positive, negative))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn embed_overwrites_first_features() {
        let images = Tensor::full(&[1, 12], 0.5);
        let out = embed_label(&images, &[4], 10).unwrap();
        assert_eq!(out.row(0)[4], 1.0);
        for j in 0..10 {
            if j != 4 {
                assert_eq!(out.row(0)[j], 0.0);
            }
        }
        assert_eq!(out.row(0)[10], 0.5);
        assert_eq!(out.row(0)[11], 0.5);
    }

    #[test]
    fn embed_validates_inputs() {
        let images = Tensor::zeros(&[2, 12]);
        assert!(embed_label(&images, &[1], 10).is_err());
        assert!(embed_label(&images, &[1, 11], 10).is_err());
        assert!(embed_label(&Tensor::zeros(&[1, 4]), &[1], 10).is_err());
    }

    #[test]
    fn embed_flattens_4d_images() {
        let images = Tensor::zeros(&[2, 1, 4, 4]);
        let out = embed_label(&images, &[0, 9], 10).unwrap();
        assert_eq!(out.shape(), &[2, 16]);
        assert_eq!(out.row(1)[9], 1.0);
    }

    #[test]
    fn negative_labels_are_always_wrong() {
        let mut rng = StdRng::seed_from_u64(0);
        let labels: Vec<usize> = (0..500).map(|i| i % 10).collect();
        let wrong = make_negative_labels(&labels, 10, &mut rng);
        for (t, w) in labels.iter().zip(&wrong) {
            assert_ne!(t, w);
            assert!(*w < 10);
        }
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn negative_labels_need_two_classes() {
        let mut rng = StdRng::seed_from_u64(0);
        make_negative_labels(&[0], 1, &mut rng);
    }

    #[test]
    fn positive_negative_sets_differ_in_label_slots_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let images = Tensor::full(&[3, 15], 0.3);
        let labels = [0usize, 5, 9];
        let (pos, neg) = positive_negative_sets(&images, &labels, 10, &mut rng).unwrap();
        assert_eq!(pos.shape(), neg.shape());
        for (i, &label) in labels.iter().enumerate() {
            // true label slot set in positive only
            assert_eq!(pos.row(i)[label], 1.0);
            assert_eq!(neg.row(i)[label], 0.0);
            // non-label features identical
            for j in 10..15 {
                assert_eq!(pos.row(i)[j], neg.row(i)[j]);
            }
        }
    }
}
