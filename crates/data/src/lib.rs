//! # ff-data
//!
//! Synthetic image-classification datasets and Forward-Forward sample
//! embedding.
//!
//! The FF-INT8 paper trains on MNIST and CIFAR-10. This reproduction runs in
//! an offline environment, so the crate generates *synthetic* stand-ins with
//! the same tensor geometry (28×28×1 and 32×32×3, 10 classes): each class has
//! a procedurally generated prototype image and samples are noisy, shifted
//! copies of it. The substitution is documented in `DESIGN.md`; all
//! experiments measure *relative* behaviour between training algorithms, which
//! the synthetic tasks preserve.
//!
//! # Examples
//!
//! ```
//! use ff_data::{synthetic_mnist, SyntheticConfig};
//!
//! let (train, test) = synthetic_mnist(&SyntheticConfig::small());
//! assert_eq!(train.num_classes(), 10);
//! assert_eq!(train.image_shape(), &[1, 28, 28]);
//! assert!(test.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod ff_samples;
mod synthetic;

pub use dataset::{Batch, Dataset, MiniBatches};
pub use ff_samples::{embed_label, make_negative_labels, positive_negative_sets};
pub use synthetic::{synthetic_cifar10, synthetic_mnist, SyntheticConfig};
