use std::fmt;

use ff_tensor::TensorError;

/// Error type for layer, loss and optimizer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The layer received an input it cannot process (wrong rank, feature
    /// count, missing cached forward state, ...).
    InvalidInput {
        /// Name of the layer or function reporting the problem.
        layer: &'static str,
        /// Human-readable description of the violated expectation.
        message: String,
    },
    /// `backward` was called before `forward` cached the required state.
    MissingForwardState {
        /// Name of the layer reporting the problem.
        layer: &'static str,
    },
    /// The requested operation is not implemented for this layer type
    /// (e.g. freezing a convolution layer for inference export).
    UnsupportedLayer {
        /// Name of the layer that lacks the capability.
        layer: &'static str,
        /// The operation that was requested.
        operation: &'static str,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::InvalidInput { layer, message } => {
                write!(f, "invalid input to `{layer}`: {message}")
            }
            NnError::MissingForwardState { layer } => {
                write!(f, "`{layer}` backward called before forward")
            }
            NnError::UnsupportedLayer { layer, operation } => {
                write!(f, "`{layer}` does not support {operation}")
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let t: NnError = TensorError::InvalidParameter {
            message: "bad".into(),
        }
        .into();
        assert!(t.to_string().contains("tensor error"));
        let i = NnError::InvalidInput {
            layer: "dense",
            message: "rank".into(),
        };
        assert!(i.to_string().contains("dense"));
        let m = NnError::MissingForwardState { layer: "conv2d" };
        assert!(m.to_string().contains("before forward"));
        let u = NnError::UnsupportedLayer {
            layer: "conv2d",
            operation: "inference snapshot",
        };
        assert!(u.to_string().contains("does not support"));
    }

    #[test]
    fn source_points_to_tensor_error() {
        use std::error::Error;
        let t: NnError = TensorError::InvalidParameter {
            message: "bad".into(),
        }
        .into();
        assert!(t.source().is_some());
        assert!(NnError::MissingForwardState { layer: "x" }
            .source()
            .is_none());
    }
}
