//! Batch normalisation for convolutional activations.

use crate::layer::{ForwardMode, Layer, ParamRefMut};
use crate::{NnError, Result};
use ff_tensor::Tensor;

/// Per-channel batch normalisation over `[batch, channels, h, w]` activations
/// with learnable scale (`gamma`) and shift (`beta`).
///
/// Running statistics are tracked with exponential moving averages so the
/// layer can also be used in inference mode, although the experiments in this
/// repository always evaluate with batch statistics frozen at training time.
///
/// # Examples
///
/// ```
/// use ff_nn::{BatchNorm2d, ForwardMode, Layer};
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_nn::NnError> {
/// let mut bn = BatchNorm2d::new(3);
/// let y = bn.forward(&Tensor::ones(&[2, 3, 4, 4]), ForwardMode::Fp32)?;
/// assert_eq!(y.shape(), &[2, 3, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    epsilon: f32,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    normalized: Tensor,
    std_inv: Vec<f32>,
    input_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            epsilon: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The tracked running mean per channel.
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn forward(&mut self, input: &Tensor, _mode: ForwardMode) -> Result<Tensor> {
        if input.ndim() != 4 || input.shape()[1] != self.channels {
            return Err(NnError::InvalidInput {
                layer: "batchnorm2d",
                message: format!(
                    "expected [batch, {}, h, w], got {:?}",
                    self.channels,
                    input.shape()
                ),
            });
        }
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let count = (n * h * w) as f32;
        let data = input.data();
        let mut out = vec![0.0f32; data.len()];
        let mut normalized = vec![0.0f32; data.len()];
        let mut std_inv = vec![0.0f32; c];
        for (ch, std_inv_ch) in std_inv.iter_mut().enumerate() {
            let mut mean = 0.0f32;
            for img in 0..n {
                let base = (img * c + ch) * h * w;
                mean += data[base..base + h * w].iter().sum::<f32>();
            }
            mean /= count;
            let mut var = 0.0f32;
            for img in 0..n {
                let base = (img * c + ch) * h * w;
                var += data[base..base + h * w]
                    .iter()
                    .map(|x| (x - mean) * (x - mean))
                    .sum::<f32>();
            }
            var /= count;
            let inv = 1.0 / (var + self.epsilon).sqrt();
            *std_inv_ch = inv;
            self.running_mean[ch] =
                (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
            self.running_var[ch] =
                (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
            let g = self.gamma.data()[ch];
            let b = self.beta.data()[ch];
            for img in 0..n {
                let base = (img * c + ch) * h * w;
                for i in 0..h * w {
                    let xn = (data[base + i] - mean) * inv;
                    normalized[base + i] = xn;
                    out[base + i] = g * xn + b;
                }
            }
        }
        self.cache = Some(BnCache {
            normalized: Tensor::from_vec(input.shape(), normalized)?,
            std_inv,
            input_shape: input.shape().to_vec(),
        });
        Ok(Tensor::from_vec(input.shape(), out)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::MissingForwardState {
            layer: "batchnorm2d",
        })?;
        let shape = &cache.input_shape;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let count = (n * h * w) as f32;
        let g_out = grad_output.data();
        let xn = cache.normalized.data();
        let mut grad_input = vec![0.0f32; g_out.len()];
        for ch in 0..c {
            let gamma = self.gamma.data()[ch];
            let inv = cache.std_inv[ch];
            // channel-wise sums
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xn = 0.0f32;
            for img in 0..n {
                let base = (img * c + ch) * h * w;
                for i in 0..h * w {
                    sum_dy += g_out[base + i];
                    sum_dy_xn += g_out[base + i] * xn[base + i];
                }
            }
            self.grad_gamma.data_mut()[ch] += sum_dy_xn;
            self.grad_beta.data_mut()[ch] += sum_dy;
            for img in 0..n {
                let base = (img * c + ch) * h * w;
                for i in 0..h * w {
                    let dy = g_out[base + i];
                    grad_input[base + i] =
                        gamma * inv / count * (count * dy - sum_dy - xn[base + i] * sum_dy_xn);
                }
            }
        }
        Ok(Tensor::from_vec(shape, grad_input)?)
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        vec![
            ParamRefMut {
                value: &mut self.gamma,
                grad: &mut self.grad_gamma,
                // Norm parameters stay in fp32 and feed no packed plan.
                version: None,
            },
            ParamRefMut {
                value: &mut self.beta,
                grad: &mut self.grad_beta,
                version: None,
            },
        ]
    }

    fn param_count(&self) -> usize {
        2 * self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_normalized_per_channel() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = init::randn(&[4, 2, 5, 5], 3.0, 2.0, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        let y = bn.forward(&x, ForwardMode::Fp32).unwrap();
        // channel 0 mean ~0, var ~1
        let c0: Vec<f32> = (0..4)
            .flat_map(|img| y.data()[(img * 2) * 25..(img * 2) * 25 + 25].to_vec())
            .collect();
        let mean: f32 = c0.iter().sum::<f32>() / c0.len() as f32;
        let var: f32 = c0.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / c0.len() as f32;
        assert!(mean.abs() < 1e-3);
        assert!((var - 1.0).abs() < 1e-2);
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn
            .forward(&Tensor::ones(&[1, 2, 4, 4]), ForwardMode::Fp32)
            .is_err());
        assert!(bn
            .forward(&Tensor::ones(&[2, 3]), ForwardMode::Fp32)
            .is_err());
    }

    #[test]
    fn backward_shape_and_zero_mean_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = init::randn(&[3, 2, 4, 4], 0.0, 1.0, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        bn.forward(&x, ForwardMode::Fp32).unwrap();
        let grad = init::randn(&[3, 2, 4, 4], 0.0, 1.0, &mut rng);
        let gi = bn.backward(&grad).unwrap();
        assert_eq!(gi.shape(), x.shape());
        // gradient through normalisation sums to ~0 per channel
        let c0_sum: f32 = (0..3)
            .map(|img| {
                gi.data()[(img * 2) * 16..(img * 2) * 16 + 16]
                    .iter()
                    .sum::<f32>()
            })
            .sum();
        assert!(c0_sum.abs() < 1e-3, "sum {c0_sum}");
    }

    #[test]
    fn backward_requires_forward() {
        let mut bn = BatchNorm2d::new(2);
        assert!(bn.backward(&Tensor::ones(&[1, 2, 2, 2])).is_err());
    }

    #[test]
    fn running_stats_update() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[2, 1, 2, 2], 10.0);
        bn.forward(&x, ForwardMode::Fp32).unwrap();
        assert!(bn.running_mean()[0] > 0.5);
    }

    #[test]
    fn param_count_is_two_per_channel() {
        assert_eq!(BatchNorm2d::new(8).param_count(), 16);
    }
}
