//! Pooling and reshaping layers.

use crate::layer::{ForwardMode, Layer};
use crate::{NnError, Result};
use ff_tensor::conv::{self, ConvGeometry};
use ff_tensor::Tensor;

/// 2-D max pooling layer.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    geom: ConvGeometry,
    cached_argmax: Option<Vec<usize>>,
    cached_input_len: usize,
    cached_input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a square window.
    ///
    /// # Errors
    ///
    /// Returns an error when `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Result<Self> {
        Ok(MaxPool2d {
            geom: ConvGeometry::new(kernel, stride, 0)?,
            cached_argmax: None,
            cached_input_len: 0,
            cached_input_shape: Vec::new(),
        })
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor, _mode: ForwardMode) -> Result<Tensor> {
        let pooled = conv::max_pool2d(input, self.geom)?;
        self.cached_argmax = Some(pooled.argmax);
        self.cached_input_len = input.len();
        self.cached_input_shape = input.shape().to_vec();
        Ok(pooled.output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let argmax = self
            .cached_argmax
            .as_ref()
            .ok_or(NnError::MissingForwardState { layer: "maxpool2d" })?;
        let mut grad = vec![0.0f32; self.cached_input_len];
        for (&src, &g) in argmax.iter().zip(grad_output.data()) {
            grad[src] += g;
        }
        Ok(Tensor::from_vec(&self.cached_input_shape, grad)?)
    }
}

/// Global average pooling `[n, c, h, w] → [n, c]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cached_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool {
            cached_shape: Vec::new(),
        }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, input: &Tensor, _mode: ForwardMode) -> Result<Tensor> {
        self.cached_shape = input.shape().to_vec();
        Ok(conv::global_avg_pool(input)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.cached_shape.len() != 4 {
            return Err(NnError::MissingForwardState {
                layer: "global_avg_pool",
            });
        }
        let s = &self.cached_shape;
        Ok(conv::global_avg_pool_backward(
            grad_output,
            s[0],
            s[1],
            s[2],
            s[3],
        )?)
    }
}

/// Flattens `[n, c, h, w]` (or any rank ≥ 2) into `[n, features]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten {
            cached_shape: Vec::new(),
        }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, _mode: ForwardMode) -> Result<Tensor> {
        self.cached_shape = input.shape().to_vec();
        let rows = input.rows();
        let cols = input.cols();
        Ok(input.reshape(&[rows, cols])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.cached_shape.is_empty() {
            return Err(NnError::MissingForwardState { layer: "flatten" });
        }
        Ok(grad_output.reshape(&self.cached_shape)?)
    }

    fn snapshot(&self) -> Option<crate::LayerSnapshot> {
        Some(crate::LayerSnapshot::Flatten)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_backward() {
        let input = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|x| x as f32).collect()).unwrap();
        let mut pool = MaxPool2d::new(2, 2).unwrap();
        let y = pool.forward(&input, ForwardMode::Fp32).unwrap();
        assert_eq!(y.data(), &[5., 7., 13., 15.]);
        let gi = pool.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(gi.data()[5], 1.0);
        assert_eq!(gi.data()[0], 0.0);
        assert_eq!(gi.sum(), 4.0);
    }

    #[test]
    fn maxpool_backward_needs_forward() {
        let mut pool = MaxPool2d::new(2, 2).unwrap();
        assert!(pool.backward(&Tensor::ones(&[1, 1, 2, 2])).is_err());
        assert!(MaxPool2d::new(0, 2).is_err());
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let input = Tensor::ones(&[2, 3, 4, 4]);
        let mut pool = GlobalAvgPool::new();
        let y = pool.forward(&input, ForwardMode::Fp32).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        let gi = pool.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(gi.shape(), &[2, 3, 4, 4]);
        assert!((gi.data()[0] - 1.0 / 16.0).abs() < 1e-6);
        let mut fresh = GlobalAvgPool::new();
        assert!(fresh.backward(&Tensor::ones(&[2, 3])).is_err());
    }

    #[test]
    fn flatten_roundtrip() {
        let input = Tensor::ones(&[2, 3, 2, 2]);
        let mut flat = Flatten::new();
        let y = flat.forward(&input, ForwardMode::Fp32).unwrap();
        assert_eq!(y.shape(), &[2, 12]);
        let back = flat.backward(&y).unwrap();
        assert_eq!(back.shape(), &[2, 3, 2, 2]);
        let mut fresh = Flatten::new();
        assert!(fresh.backward(&y).is_err());
    }
}
