//! A sequential stack of layers.

use crate::layer::{ForwardMode, Layer, LayerSnapshot, ParamRefMut};
use crate::{NnError, Result};
use ff_tensor::Tensor;

/// A feed-forward network composed of layers executed in order.
///
/// `Sequential` is the container used both by the backpropagation baselines
/// (full forward + full backward) and, with per-layer access, by the
/// Forward-Forward trainers in `ff-core`.
///
/// # Examples
///
/// ```
/// use ff_nn::{Dense, ForwardMode, Sequential};
/// use ff_tensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Box::new(Dense::new(4, 8, true, &mut rng)));
/// net.push(Box::new(Dense::new(8, 2, false, &mut rng)));
/// let y = net.forward(&Tensor::ones(&[3, 4]), ForwardMode::Fp32)?;
/// assert_eq!(y.shape(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.len())
            .field("param_count", &self.param_count())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the end of the network.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by per-layer trainers).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Runs a full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, input: &Tensor, mode: ForwardMode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Runs a full forward pass and returns the output of **every** layer
    /// (used by the look-ahead scheme, which needs per-layer goodness).
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward_collect(&mut self, input: &Tensor, mode: ForwardMode) -> Result<Vec<Tensor>> {
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
            outputs.push(x.clone());
        }
        Ok(outputs)
    }

    /// Runs a full backward pass from the gradient of the loss w.r.t. the
    /// network output, accumulating parameter gradients in every layer.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(grad)
    }

    /// Collects mutable parameter handles from every layer, in layer order.
    pub fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Resets all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total forward MACs per batch of `batch` samples (requires a prior
    /// forward pass for convolution layers to know their spatial geometry).
    pub fn forward_macs(&self, batch: usize) -> u64 {
        self.layers.iter().map(|l| l.forward_macs(batch)).sum()
    }

    /// Classifies a batch by running a forward pass and taking the row-wise
    /// argmax of the final logits.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn predict(&mut self, input: &Tensor, mode: ForwardMode) -> Result<Vec<usize>> {
        Ok(self.forward(input, mode)?.argmax_rows())
    }

    /// Extracts an immutable inference snapshot of every layer, in order —
    /// the export half of model freezing (`ff-serve` turns the snapshots
    /// into a frozen model and a binary artifact).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnsupportedLayer`] naming the first layer that has
    /// no frozen representation (see [`Layer::snapshot`]).
    pub fn snapshots(&self) -> Result<Vec<LayerSnapshot>> {
        self.layers
            .iter()
            .map(|layer| {
                layer.snapshot().ok_or(NnError::UnsupportedLayer {
                    layer: layer.name(),
                    operation: "inference snapshot",
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{softmax_cross_entropy, Dense, Optimizer, Sgd};
    use ff_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_like_net(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Box::new(Dense::new(2, 16, true, rng)));
        net.push(Box::new(Dense::new(16, 2, false, rng)));
        net
    }

    #[test]
    fn forward_collect_returns_every_layer_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = xor_like_net(&mut rng);
        let outs = net
            .forward_collect(&Tensor::ones(&[3, 2]), ForwardMode::Fp32)
            .unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].shape(), &[3, 16]);
        assert_eq!(outs[1].shape(), &[3, 2]);
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = xor_like_net(&mut rng);
        assert_eq!(net.param_count(), 2 * 16 + 16 + 16 * 2 + 2);
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
    }

    #[test]
    fn end_to_end_training_learns_xor() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = xor_like_net(&mut rng);
        let x = Tensor::from_vec(&[4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
        let labels = [0usize, 1, 1, 0];
        let mut sgd = Sgd::new(0.5, 0.9);
        let mut last_loss = f32::INFINITY;
        for _ in 0..300 {
            let logits = net.forward(&x, ForwardMode::Fp32).unwrap();
            let out = softmax_cross_entropy(&logits, &labels).unwrap();
            net.zero_grad();
            net.backward(&out.grad).unwrap();
            let mut params = net.params_mut();
            sgd.step(&mut params);
            last_loss = out.loss;
        }
        assert!(last_loss < 0.1, "final loss {last_loss}");
        let preds = net.predict(&x, ForwardMode::Fp32).unwrap();
        assert_eq!(preds, vec![0, 1, 1, 0]);
    }

    #[test]
    fn zero_grad_clears_all_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = xor_like_net(&mut rng);
        let x = init::uniform(&[2, 2], -1.0, 1.0, &mut rng);
        let y = net.forward(&x, ForwardMode::Fp32).unwrap();
        net.backward(&Tensor::ones(y.shape())).unwrap();
        let before: f32 = net
            .params_mut()
            .iter()
            .map(|p| p.grad.max_abs())
            .fold(0.0, f32::max);
        assert!(before > 0.0);
        net.zero_grad();
        let after: f32 = net
            .params_mut()
            .iter()
            .map(|p| p.grad.max_abs())
            .fold(0.0, f32::max);
        assert_eq!(after, 0.0);
    }

    #[test]
    fn snapshots_capture_every_dense_layer() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = xor_like_net(&mut rng);
        let snaps = net.snapshots().unwrap();
        assert_eq!(snaps.len(), 2);
        match &snaps[0] {
            crate::LayerSnapshot::Dense { weight, bias, relu } => {
                assert_eq!(weight.shape(), &[16, 2]);
                assert_eq!(bias.shape(), &[16]);
                assert!(*relu);
            }
            other => panic!("expected dense snapshot, got {}", other.kind()),
        }
    }

    #[test]
    fn snapshots_reject_unsupported_layers() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = Sequential::new();
        net.push(Box::new(
            crate::Conv2d::new(1, 2, 3, 1, 1, false, &mut rng).unwrap(),
        ));
        assert!(matches!(
            net.snapshots(),
            Err(NnError::UnsupportedLayer {
                layer: "conv2d",
                ..
            })
        ));
    }

    #[test]
    fn empty_network_is_identity() {
        let mut net = Sequential::new();
        let x = Tensor::ones(&[2, 3]);
        let y = net.forward(&x, ForwardMode::Fp32).unwrap();
        assert_eq!(y.data(), x.data());
        assert_eq!(net.forward_macs(4), 0);
    }
}
