//! Standalone activation layers.

use crate::layer::{ForwardMode, Layer};
use crate::{NnError, Result};
use ff_tensor::Tensor;

/// Rectified linear unit as a standalone layer.
///
/// Most MAC layers in this crate offer a *fused* ReLU; the standalone variant
/// exists for architectures where the activation is separated from the linear
/// op (e.g. after a residual join).
///
/// # Examples
///
/// ```
/// use ff_nn::{ForwardMode, Layer, Relu};
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_nn::NnError> {
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_slice(&[3], &[-1.0, 0.0, 2.0]).unwrap(), ForwardMode::Fp32)?;
/// assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, _mode: ForwardMode) -> Result<Tensor> {
        self.mask = Some(input.relu_grad_mask());
        Ok(input.relu())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::MissingForwardState { layer: "relu" })?;
        Ok(grad_output.mul_elem(mask)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[4], &[-2.0, -0.5, 0.5, 2.0]).unwrap();
        let y = relu.forward(&x, ForwardMode::Fp32).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        let g = relu.backward(&Tensor::ones(&[4])).unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::ones(&[2])).is_err());
    }

    #[test]
    fn has_no_params() {
        let mut relu = Relu::new();
        assert_eq!(relu.param_count(), 0);
        assert!(relu.params_mut().is_empty());
    }
}
