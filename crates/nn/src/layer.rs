//! The [`Layer`] trait, shared parameter handles, and frozen-layer
//! snapshots for inference export.

use crate::Result;
use ff_quant::{QuantTensor, Rounding};
use ff_tensor::Tensor;

/// Numeric mode of a forward pass.
///
/// [`ForwardMode::Int8`] quantizes the layer's inputs and weights with
/// symmetric uniform quantization and performs the MAC phase with `i8`
/// operands and `i32` accumulation, mirroring the FF-INT8 dataflow
/// (paper Fig. 4). Layers without MACs (pooling, flatten, ...) behave the
/// same in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardMode {
    /// Full 32-bit floating-point arithmetic.
    #[default]
    Fp32,
    /// INT8 MACs with the given rounding mode for input/gradient quantization.
    Int8(Rounding),
}

impl ForwardMode {
    /// `true` when the mode performs INT8 MACs.
    pub fn is_int8(&self) -> bool {
        matches!(self, ForwardMode::Int8(_))
    }
}

/// Mutable handles onto one parameter tensor and its gradient accumulator.
///
/// Optimizers iterate over these; gradient-quantizing trainers (BP-INT8, UI8,
/// GDAI8) mutate `grad` in place before stepping.
#[derive(Debug)]
pub struct ParamRefMut<'a> {
    /// The parameter values.
    pub value: &'a mut Tensor,
    /// The accumulated gradient (same shape as `value`).
    pub grad: &'a mut Tensor,
    /// Monotonic parameter-version counter, bumped by [`crate::Optimizer`]
    /// implementations every time they write `value`. Layers that keep
    /// cached quantized state keyed to a parameter (e.g. a packed INT8
    /// weight plan, see `ff_quant::plan`) expose `Some(counter)` here and
    /// rebuild the cache when the counter has moved; parameters with no
    /// derived cache pass `None`.
    pub version: Option<&'a mut u64>,
}

impl ParamRefMut<'_> {
    /// Records that `value` was mutated by bumping the version counter (if
    /// the owning layer tracks one). Every optimizer must call this (or bump
    /// the counter itself) after writing `value`, otherwise layers may keep
    /// serving stale cached quantized weights.
    pub fn mark_updated(&mut self) {
        if let Some(version) = self.version.as_deref_mut() {
            *version = version.wrapping_add(1);
        }
    }
}

/// An immutable, training-free description of one layer, extracted by
/// [`Layer::snapshot`] for inference export.
///
/// A snapshot captures exactly what a *serving* engine needs — INT8 weight
/// codes with their scale, the fp32 bias, the activation flag, and shape
/// metadata — and nothing the training loop needs (gradients, caches,
/// optimizer state). `ff-serve` turns a `Vec<LayerSnapshot>` into a frozen
/// model and a versioned binary artifact.
#[derive(Debug, Clone)]
pub enum LayerSnapshot {
    /// A dense layer: `y = act(x · Wᵀ + b)` with `W` stored `[out, in]` and
    /// quantized to INT8 with deterministic nearest rounding.
    Dense {
        /// The quantized weight matrix, shape `[out_features, in_features]`.
        weight: QuantTensor,
        /// The fp32 bias vector, length `out_features`.
        bias: Tensor,
        /// `true` when the layer applies a fused ReLU.
        relu: bool,
    },
    /// A flatten layer: reshapes `[batch, ...]` to `[batch, features]`
    /// (a no-op on already-flat serving inputs).
    Flatten,
}

impl LayerSnapshot {
    /// Short human-readable kind name (used in error messages and reports).
    pub fn kind(&self) -> &'static str {
        match self {
            LayerSnapshot::Dense { .. } => "dense",
            LayerSnapshot::Flatten => "flatten",
        }
    }
}

/// A neural-network layer with an explicit backward pass.
///
/// Layers cache whatever their own backward pass needs during `forward`;
/// `backward` consumes the gradient w.r.t. the layer output, **accumulates**
/// parameter gradients (`+=`) and returns the gradient w.r.t. the layer
/// input. Accumulation (rather than overwrite) is what lets the look-ahead
/// scheme add `λ · ∂L_j/∂W_i` contributions from several later layers.
pub trait Layer: Send {
    /// Short human-readable layer name (used in error messages and reports).
    fn name(&self) -> &'static str;

    /// Runs the layer on a mini-batch.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError`] when the input shape is incompatible.
    fn forward(&mut self, input: &Tensor, mode: ForwardMode) -> Result<Tensor>;

    /// Propagates `grad_output` (gradient w.r.t. this layer's output) back to
    /// the layer input, accumulating parameter gradients along the way.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingForwardState`] if called before
    /// `forward`, or a shape error if `grad_output` does not match the cached
    /// output shape.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Mutable access to every parameter/gradient pair of the layer.
    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        Vec::new()
    }

    /// Total number of trainable scalar parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Resets every accumulated gradient to zero.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.grad.scale_inplace(0.0);
        }
    }

    /// Number of fused multiply–accumulate operations performed by one
    /// forward pass over a batch of `batch` samples, given the layer's input
    /// feature geometry. Used by the analytic cost model.
    fn forward_macs(&self, batch: usize) -> u64 {
        let _ = batch;
        0
    }

    /// Extracts an immutable inference snapshot of this layer, or `None`
    /// when the layer type has no frozen representation yet (convolutions,
    /// normalization, residual blocks). [`crate::Sequential::snapshots`]
    /// turns a `None` into a typed error naming the layer.
    fn snapshot(&self) -> Option<LayerSnapshot> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_mode_queries() {
        assert!(!ForwardMode::Fp32.is_int8());
        assert!(ForwardMode::Int8(Rounding::Nearest).is_int8());
        assert_eq!(ForwardMode::default(), ForwardMode::Fp32);
    }
}
