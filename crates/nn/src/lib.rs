//! # ff-nn
//!
//! Neural-network building blocks for the FF-INT8 reproduction: layers with
//! explicit forward/backward passes, fused activations, INT8 forward support,
//! losses and optimizers.
//!
//! The crate deliberately avoids a tape-based autograd: every [`Layer`]
//! caches exactly what its own backward pass needs, which is what makes the
//! memory accounting of backpropagation vs. Forward-Forward explicit (the
//! paper's central efficiency argument).
//!
//! # Examples
//!
//! ```
//! use ff_nn::{Dense, ForwardMode, Layer};
//! use ff_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), ff_nn::NnError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut layer = Dense::new(4, 3, true, &mut rng);
//! let x = Tensor::ones(&[2, 4]);
//! let y = layer.forward(&x, ForwardMode::Fp32)?;
//! assert_eq!(y.shape(), &[2, 3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod conv_layers;
mod dense;
mod error;
mod layer;
mod loss;
mod network;
mod norm;
mod optim;
mod pooling;
mod residual;

pub use activation::Relu;
pub use conv_layers::Conv2d;
pub use dense::Dense;
pub use error::NnError;
pub use layer::{ForwardMode, Layer, LayerSnapshot, ParamRefMut};
pub use loss::{mse_loss, softmax_cross_entropy, SoftmaxCrossEntropyOutput};
pub use network::Sequential;
pub use norm::BatchNorm2d;
pub use optim::{Adam, Optimizer, Sgd};
pub use pooling::{Flatten, GlobalAvgPool, MaxPool2d};
pub use residual::ResidualBlock;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;
