//! 2-D convolution layer with optional fused ReLU and INT8 forward support.

use crate::layer::{ForwardMode, Layer, ParamRefMut};
use crate::{NnError, Result};
use ff_quant::plan::{int8_matmul_a_bt_planned, int8_matmul_at_b_planned, QGemmPlan};
use ff_quant::QuantTensor;
use ff_tensor::conv::{col2im, im2col, ConvGeometry};
use ff_tensor::{init, linalg, Tensor};
use rand::Rng;

/// A 2-D convolution `y = act(conv(x, W) + b)` implemented via im2col.
///
/// Weights are `[out_ch, in_ch, kh, kw]`. Activations follow the
/// `[batch, channels, height, width]` convention of `ff-tensor`.
///
/// In [`ForwardMode::Int8`] the `[oc, ic·kh·kw]` weight matrix is quantized
/// and packed once into a cached [`QGemmPlan`] and reused by every im2col
/// GEMM until an optimizer bumps the layer's parameter version; the
/// quantized im2col column matrix of the latest forward is wrapped in a plan
/// for the backward weight-gradient GEMM.
///
/// # Examples
///
/// ```
/// use ff_nn::{Conv2d, ForwardMode, Layer};
/// use ff_tensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, true, &mut rng)?;
/// let y = conv.forward(&Tensor::ones(&[2, 3, 8, 8]), ForwardMode::Fp32)?;
/// assert_eq!(y.shape(), &[2, 8, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    geom: ConvGeometry,
    fused_relu: bool,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    /// Bumped whenever `weight` changes (optimizer steps via
    /// [`ParamRefMut::mark_updated`]); keys `weight_plan`.
    weight_version: u64,
    /// Cached quantized + packed panels of the `[oc, ic·kh·kw]` weight
    /// matrix, valid while its version tag equals `weight_version`.
    weight_plan: Option<QGemmPlan>,
    /// How many times the weight plan has been (re)built.
    weight_plan_builds: u64,
    cached_cols: Option<Tensor>,
    /// Quantized im2col columns of the latest INT8 forward, wrapped in a
    /// plan so the backward `gW` GEMM packs them at most once per step.
    cols_plan: Option<QGemmPlan>,
    cached_mask: Option<Tensor>,
    cached_input_shape: Option<Vec<usize>>,
    cached_output_hw: (usize, usize),
    last_mode: ForwardMode,
    /// Backward calls since the last forward; folded into the gradient
    /// quantization salt so the look-ahead scheme's repeated backwards draw
    /// independent seeded rounding streams.
    backward_calls: u64,
}

/// Site salt decorrelating the forward im2col-quantization stream from other
/// seeded-stochastic-rounding sites (see [`QuantTensor::quantize_seeded`]).
const SALT_FORWARD_COLS: u64 = 0xC1;
/// Site salt for the backward gradient-quantization stream.
const SALT_BACKWARD_GRAD: u64 = 0xC2;

impl Conv2d {
    /// Creates a convolution layer with Kaiming-normal weights and zero bias.
    ///
    /// # Errors
    ///
    /// Returns an error when `kernel` or `stride` is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        fused_relu: bool,
        rng: &mut R,
    ) -> Result<Self> {
        let geom = ConvGeometry::new(kernel, stride, padding)?;
        let fan_in = in_channels * kernel * kernel;
        let weight =
            init::kaiming_normal(&[out_channels, in_channels, kernel, kernel], fan_in, rng);
        Ok(Conv2d {
            in_channels,
            out_channels,
            geom,
            fused_relu,
            weight,
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            weight_version: 0,
            weight_plan: None,
            weight_plan_builds: 0,
            cached_cols: None,
            cols_plan: None,
            cached_mask: None,
            cached_input_shape: None,
            cached_output_hw: (0, 0),
            last_mode: ForwardMode::Fp32,
            backward_calls: 0,
        })
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Convolution geometry (kernel, stride, padding).
    pub fn geometry(&self) -> ConvGeometry {
        self.geom
    }

    /// Immutable access to the accumulated weight gradient.
    pub fn grad_weight(&self) -> &Tensor {
        &self.grad_weight
    }

    /// The layer's parameter version: bumped whenever the weight tensor is
    /// mutated through an optimizer step.
    pub fn weight_version(&self) -> u64 {
        self.weight_version
    }

    /// How many times the cached INT8 weight plan has been built.
    pub fn weight_plan_builds(&self) -> u64 {
        self.weight_plan_builds
    }

    fn weight_matrix(&self) -> Result<Tensor> {
        Ok(self.weight.reshape(&[
            self.out_channels,
            self.in_channels * self.geom.kh * self.geom.kw,
        ])?)
    }

    /// Reorders `[n·oh·ow, oc]` rows into `[n, oc, oh, ow]`.
    fn rows_to_nchw(&self, rows: &Tensor, n: usize, oh: usize, ow: usize) -> Tensor {
        let oc = self.out_channels;
        let mut out = vec![0.0f32; n * oc * oh * ow];
        let src = rows.data();
        for img in 0..n {
            for y in 0..oh {
                for x in 0..ow {
                    let row = (img * oh + y) * ow + x;
                    for ch in 0..oc {
                        out[((img * oc + ch) * oh + y) * ow + x] = src[row * oc + ch];
                    }
                }
            }
        }
        Tensor::from_vec(&[n, oc, oh, ow], out).expect("rows_to_nchw shape")
    }

    /// Reorders `[n, oc, oh, ow]` into `[n·oh·ow, oc]` rows.
    fn nchw_to_rows(&self, t: &Tensor, n: usize, oh: usize, ow: usize) -> Tensor {
        let oc = self.out_channels;
        let mut out = vec![0.0f32; n * oh * ow * oc];
        let src = t.data();
        for img in 0..n {
            for ch in 0..oc {
                for y in 0..oh {
                    for x in 0..ow {
                        let row = (img * oh + y) * ow + x;
                        out[row * oc + ch] = src[((img * oc + ch) * oh + y) * ow + x];
                    }
                }
            }
        }
        Tensor::from_vec(&[n * oh * ow, oc], out).expect("nchw_to_rows shape")
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, mode: ForwardMode) -> Result<Tensor> {
        if input.ndim() != 4 || input.shape()[1] != self.in_channels {
            return Err(NnError::InvalidInput {
                layer: "conv2d",
                message: format!(
                    "expected [batch, {}, h, w], got {:?}",
                    self.in_channels,
                    input.shape()
                ),
            });
        }
        if mode != self.last_mode {
            // A mode switch invalidates every cached forward artefact so a
            // later backward can never mix FP32 state with INT8 state.
            self.cached_cols = None;
            self.cols_plan = None;
            self.cached_mask = None;
            self.cached_input_shape = None;
        }
        self.last_mode = mode;
        let n = input.shape()[0];
        let (cols, oh, ow) = im2col(input, self.geom)?;
        // Bias and ReLU (+ gradient mask) are fused into the GEMM epilogue
        // over the `[n·oh·ow, oc]` row matrix; ReLU commutes with the NCHW
        // reorder, so only the already-activated rows (and mask) are
        // rearranged afterwards.
        let (rows, rows_mask) = match mode {
            ForwardMode::Fp32 => {
                self.cols_plan = None;
                let weight_mat = self.weight_matrix()?;
                linalg::matmul_a_bt_fused(&cols, &weight_mat, Some(&self.bias), self.fused_relu)?
            }
            ForwardMode::Int8(rounding) => {
                let q_cols = QuantTensor::quantize_seeded(&cols, rounding, SALT_FORWARD_COLS);
                // Reuse the packed weight-matrix panels (reshape + quantize
                // + pack) while the weights are unchanged.
                if self.weight_plan.as_ref().map(QGemmPlan::version) != Some(self.weight_version) {
                    let weight_mat = self.weight_matrix()?;
                    self.weight_plan =
                        Some(QGemmPlan::from_tensor(&weight_mat, self.weight_version)?);
                    self.weight_plan_builds += 1;
                }
                let plan = self.weight_plan.as_mut().expect("weight plan just ensured");
                let out =
                    int8_matmul_a_bt_planned(&q_cols, plan, Some(&self.bias), self.fused_relu)?;
                self.cols_plan = Some(QGemmPlan::from_quant(q_cols, 0)?);
                out
            }
        };
        let out = self.rows_to_nchw(&rows, n, oh, ow);
        self.cached_cols = Some(cols);
        self.backward_calls = 0;
        self.cached_input_shape = Some(input.shape().to_vec());
        self.cached_output_hw = (oh, ow);
        self.cached_mask = rows_mask.map(|mask| self.rows_to_nchw(&mask, n, oh, ow));
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.backward_calls = self.backward_calls.wrapping_add(1);
        let cols = self
            .cached_cols
            .as_ref()
            .ok_or(NnError::MissingForwardState { layer: "conv2d" })?;
        let input_shape = self
            .cached_input_shape
            .clone()
            .ok_or(NnError::MissingForwardState { layer: "conv2d" })?;
        let (n, c, h, w) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        let (oh, ow) = self.cached_output_hw;
        let grad_post = match &self.cached_mask {
            Some(mask) => grad_output.mul_elem(mask)?,
            None => grad_output.clone(),
        };
        let grad_rows = self.nchw_to_rows(&grad_post, n, oh, ow);
        let weight_mat = self.weight_matrix()?;
        let (gw_mat, grad_cols) = match self.last_mode {
            ForwardMode::Fp32 => {
                // gW = grad_rowsᵀ · cols  → [oc, ic·kh·kw]
                let gw = linalg::matmul_at_b(&grad_rows, cols)?;
                let gc = linalg::matmul(&grad_rows, &weight_mat)?;
                (gw, gc)
            }
            ForwardMode::Int8(rounding) => {
                let salt = SALT_BACKWARD_GRAD.wrapping_add(self.backward_calls.wrapping_mul(0x100));
                let q_grad = QuantTensor::quantize_seeded(&grad_rows, rounding, salt);
                let cols_plan = self
                    .cols_plan
                    .as_mut()
                    .ok_or(NnError::MissingForwardState { layer: "conv2d" })?;
                let gw = int8_matmul_at_b_planned(&q_grad, cols_plan)?;
                let gc = linalg::matmul(&q_grad.dequantize(), &weight_mat)?;
                (gw, gc)
            }
        };
        let gw = gw_mat.reshape(&[
            self.out_channels,
            self.in_channels,
            self.geom.kh,
            self.geom.kw,
        ])?;
        self.grad_weight.add_assign(&gw)?;
        self.grad_bias.add_assign(&grad_rows.sum_axis0())?;
        let grad_input = col2im(&grad_cols, n, c, h, w, self.geom)?;
        Ok(grad_input)
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        vec![
            ParamRefMut {
                value: &mut self.weight,
                grad: &mut self.grad_weight,
                version: Some(&mut self.weight_version),
            },
            ParamRefMut {
                value: &mut self.bias,
                grad: &mut self.grad_bias,
                // Bias is applied in fp32 during the epilogue, so bias
                // updates never invalidate the packed weight plan.
                version: None,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.out_channels * self.in_channels * self.geom.kh * self.geom.kw + self.out_channels
    }

    fn forward_macs(&self, batch: usize) -> u64 {
        // MACs depend on the spatial output size, which we only know after a
        // forward pass; use the cached geometry when available.
        let (oh, ow) = self.cached_output_hw;
        (batch * self.out_channels * oh * ow * self.in_channels * self.geom.kh * self.geom.kw)
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimizer, Sgd};
    use ff_quant::Rounding;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn forward_shape() {
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, false, &mut rng()).unwrap();
        let y = conv
            .forward(&Tensor::ones(&[1, 2, 6, 6]), ForwardMode::Fp32)
            .unwrap();
        assert_eq!(y.shape(), &[1, 4, 6, 6]);
        assert_eq!(conv.param_count(), 4 * 2 * 9 + 4);
    }

    #[test]
    fn stride_reduces_spatial_size() {
        let mut conv = Conv2d::new(1, 1, 3, 2, 1, false, &mut rng()).unwrap();
        let y = conv
            .forward(&Tensor::ones(&[1, 1, 8, 8]), ForwardMode::Fp32)
            .unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, false, &mut rng()).unwrap();
        assert!(conv
            .forward(&Tensor::ones(&[1, 2, 6, 6]), ForwardMode::Fp32)
            .is_err());
        assert!(conv
            .forward(&Tensor::ones(&[6, 6]), ForwardMode::Fp32)
            .is_err());
    }

    #[test]
    fn backward_weight_grad_matches_finite_difference() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, false, &mut rng()).unwrap();
        let x = init::uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut rng());
        let y = conv.forward(&x, ForwardMode::Fp32).unwrap();
        conv.zero_grad();
        conv.backward(&Tensor::ones(y.shape())).unwrap();
        let analytic = conv.grad_weight().data()[3];

        let eps = 1e-3f32;
        let mut plus = conv.clone();
        plus.weight.data_mut()[3] += eps;
        let lp = plus.forward(&x, ForwardMode::Fp32).unwrap().sum();
        let mut minus = conv.clone();
        minus.weight.data_mut()[3] -= eps;
        let lm = minus.forward(&x, ForwardMode::Fp32).unwrap().sum();
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} numeric {numeric}"
        );
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, true, &mut rng()).unwrap();
        let x = init::uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut rng());
        let y = conv.forward(&x, ForwardMode::Fp32).unwrap();
        let gi = conv.backward(&Tensor::ones(y.shape())).unwrap();
        let idx = 5;
        let analytic = gi.data()[idx];
        let eps = 1e-3f32;
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        let mut probe = conv.clone();
        let lp = probe.forward(&xp, ForwardMode::Fp32).unwrap().sum();
        let lm = probe.forward(&xm, ForwardMode::Fp32).unwrap().sum();
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 2e-2,
            "analytic {analytic} numeric {numeric}"
        );
    }

    #[test]
    fn int8_forward_tracks_fp32() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng()).unwrap();
        let x = init::uniform(&[1, 2, 6, 6], -1.0, 1.0, &mut rng());
        let y32 = conv.forward(&x, ForwardMode::Fp32).unwrap();
        let y8 = conv
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        let rel = y32.sub(&y8).unwrap().frobenius_norm() / (y32.frobenius_norm() + 1e-6);
        assert!(rel < 0.12, "relative error {rel}");
    }

    #[test]
    fn int8_backward_accumulates() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, true, &mut rng()).unwrap();
        let x = init::uniform(&[1, 1, 5, 5], -1.0, 1.0, &mut rng());
        let y = conv
            .forward(&x, ForwardMode::Int8(Rounding::Stochastic))
            .unwrap();
        conv.backward(&Tensor::ones(y.shape())).unwrap();
        assert!(conv.grad_weight().max_abs() > 0.0);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, false, &mut rng()).unwrap();
        assert!(conv.backward(&Tensor::ones(&[1, 1, 4, 4])).is_err());
    }

    #[test]
    fn weight_plan_rebuilt_only_after_step() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng()).unwrap();
        let x = init::uniform(&[1, 2, 6, 6], -1.0, 1.0, &mut rng());
        let y1 = conv
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        let y2 = conv
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        assert_eq!(conv.weight_plan_builds(), 1);
        assert_eq!(y1.data(), y2.data(), "cached plan must be bit-stable");
        conv.backward(&Tensor::ones(y2.shape())).unwrap();
        let mut sgd = Sgd::new(0.1, 0.0);
        sgd.step(&mut conv.params_mut());
        let y3 = conv
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        assert_eq!(conv.weight_plan_builds(), 2);
        assert!(
            y3.sub(&y2).unwrap().max_abs() > 0.0,
            "post-step forward must see the updated weights"
        );
    }

    #[test]
    fn mode_switch_clears_quantized_state() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, false, &mut rng()).unwrap();
        let x = init::uniform(&[1, 1, 5, 5], -1.0, 1.0, &mut rng());
        conv.forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        assert!(conv.cols_plan.is_some());
        conv.forward(&x, ForwardMode::Fp32).unwrap();
        assert!(
            conv.cols_plan.is_none(),
            "switching to Fp32 must drop the quantized column plan"
        );
        conv.backward(&Tensor::ones(&[1, 2, 5, 5])).unwrap();
    }

    #[test]
    fn macs_counted_after_forward() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, false, &mut rng()).unwrap();
        conv.forward(&Tensor::ones(&[1, 1, 5, 5]), ForwardMode::Fp32)
            .unwrap();
        // output 3x3, 2 out channels, 1x3x3 kernel
        assert_eq!(conv.forward_macs(1), (2 * 3 * 3 * 9) as u64);
    }
}
