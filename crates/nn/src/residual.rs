//! Residual block composed of arbitrary inner layers.

use crate::layer::{ForwardMode, Layer, ParamRefMut};
use crate::Result;
use ff_tensor::Tensor;

/// A residual block `y = relu(main(x) + shortcut(x))`.
///
/// `main` is an arbitrary stack of layers; `shortcut` is either the identity
/// (empty) or a projection stack (e.g. a 1×1 strided convolution) when the
/// main path changes shape. This is the structure the FF-INT8 paper singles
/// out as problematic for the vanilla Forward-Forward algorithm (Section V-B,
/// Fig. 6b) and the reason the look-ahead scheme exists.
///
/// # Examples
///
/// ```
/// use ff_nn::{Conv2d, ForwardMode, Layer, ResidualBlock};
/// use ff_tensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let main: Vec<Box<dyn Layer>> = vec![
///     Box::new(Conv2d::new(4, 4, 3, 1, 1, true, &mut rng)?),
///     Box::new(Conv2d::new(4, 4, 3, 1, 1, false, &mut rng)?),
/// ];
/// let mut block = ResidualBlock::new(main, Vec::new());
/// let y = block.forward(&Tensor::ones(&[1, 4, 6, 6]), ForwardMode::Fp32)?;
/// assert_eq!(y.shape(), &[1, 4, 6, 6]);
/// # Ok(())
/// # }
/// ```
pub struct ResidualBlock {
    main: Vec<Box<dyn Layer>>,
    shortcut: Vec<Box<dyn Layer>>,
    cached_mask: Option<Tensor>,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualBlock")
            .field("main_layers", &self.main.len())
            .field("shortcut_layers", &self.shortcut.len())
            .finish()
    }
}

impl ResidualBlock {
    /// Creates a residual block. An empty `shortcut` means an identity skip.
    pub fn new(main: Vec<Box<dyn Layer>>, shortcut: Vec<Box<dyn Layer>>) -> Self {
        ResidualBlock {
            main,
            shortcut,
            cached_mask: None,
        }
    }

    /// Number of layers on the main path.
    pub fn main_depth(&self) -> usize {
        self.main.len()
    }

    /// `true` when the skip connection is a projection rather than identity.
    pub fn has_projection(&self) -> bool {
        !self.shortcut.is_empty()
    }
}

impl Layer for ResidualBlock {
    fn name(&self) -> &'static str {
        "residual_block"
    }

    fn forward(&mut self, input: &Tensor, mode: ForwardMode) -> Result<Tensor> {
        let mut main_out = input.clone();
        for layer in &mut self.main {
            main_out = layer.forward(&main_out, mode)?;
        }
        let mut skip_out = input.clone();
        for layer in &mut self.shortcut {
            skip_out = layer.forward(&skip_out, mode)?;
        }
        let pre = main_out.add(&skip_out)?;
        let mask = pre.relu_grad_mask();
        let out = pre.relu();
        self.cached_mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .cached_mask
            .as_ref()
            .ok_or(crate::NnError::MissingForwardState {
                layer: "residual_block",
            })?;
        let mut grad = grad_output.mul_elem(mask)?;
        // main path
        let mut grad_main = grad.clone();
        for layer in self.main.iter_mut().rev() {
            grad_main = layer.backward(&grad_main)?;
        }
        // shortcut path
        if self.shortcut.is_empty() {
            grad_main.add_assign(&grad)?;
            Ok(grad_main)
        } else {
            for layer in self.shortcut.iter_mut().rev() {
                grad = layer.backward(&grad)?;
            }
            grad_main.add_assign(&grad)?;
            Ok(grad_main)
        }
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        let mut params = Vec::new();
        for layer in &mut self.main {
            params.extend(layer.params_mut());
        }
        for layer in &mut self.shortcut {
            params.extend(layer.params_mut());
        }
        params
    }

    fn param_count(&self) -> usize {
        self.main
            .iter()
            .map(|l| l.param_count())
            .chain(self.shortcut.iter().map(|l| l.param_count()))
            .sum()
    }

    fn forward_macs(&self, batch: usize) -> u64 {
        self.main
            .iter()
            .map(|l| l.forward_macs(batch))
            .chain(self.shortcut.iter().map(|l| l.forward_macs(batch)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Dense};
    use ff_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn identity_skip_forward_shape() {
        let mut r = rng();
        let main: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(2, 2, 3, 1, 1, true, &mut r).unwrap()),
            Box::new(Conv2d::new(2, 2, 3, 1, 1, false, &mut r).unwrap()),
        ];
        let mut block = ResidualBlock::new(main, Vec::new());
        let y = block
            .forward(&Tensor::ones(&[1, 2, 5, 5]), ForwardMode::Fp32)
            .unwrap();
        assert_eq!(y.shape(), &[1, 2, 5, 5]);
        assert!(!block.has_projection());
        assert_eq!(block.main_depth(), 2);
    }

    #[test]
    fn projection_skip_changes_shape() {
        let mut r = rng();
        let main: Vec<Box<dyn Layer>> =
            vec![Box::new(Conv2d::new(2, 4, 3, 2, 1, false, &mut r).unwrap())];
        let shortcut: Vec<Box<dyn Layer>> =
            vec![Box::new(Conv2d::new(2, 4, 1, 2, 0, false, &mut r).unwrap())];
        let mut block = ResidualBlock::new(main, shortcut);
        let y = block
            .forward(&Tensor::ones(&[1, 2, 6, 6]), ForwardMode::Fp32)
            .unwrap();
        assert_eq!(y.shape(), &[1, 4, 3, 3]);
        assert!(block.has_projection());
    }

    #[test]
    fn backward_propagates_through_both_paths() {
        let mut r = rng();
        let main: Vec<Box<dyn Layer>> = vec![Box::new(Dense::new(4, 4, true, &mut r))];
        let mut block = ResidualBlock::new(main, Vec::new());
        let x = init::uniform(&[2, 4], -1.0, 1.0, &mut r);
        let y = block.forward(&x, ForwardMode::Fp32).unwrap();
        let gi = block.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gi.shape(), x.shape());
        // identity path contributes at least the masked gradient
        assert!(gi.max_abs() > 0.0);
        assert!(block.param_count() > 0);
    }

    #[test]
    fn skip_gradient_matches_finite_difference() {
        let mut r = rng();
        let main: Vec<Box<dyn Layer>> = vec![Box::new(Dense::new(3, 3, false, &mut r))];
        let mut block = ResidualBlock::new(main, Vec::new());
        let x = init::uniform(&[1, 3], -0.5, 0.5, &mut r);
        let y = block.forward(&x, ForwardMode::Fp32).unwrap();
        let gi = block.backward(&Tensor::ones(y.shape())).unwrap();
        let idx = 1;
        let eps = 1e-3f32;
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        let lp = block.forward(&xp, ForwardMode::Fp32).unwrap().sum();
        let lm = block.forward(&xm, ForwardMode::Fp32).unwrap().sum();
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((gi.data()[idx] - numeric).abs() < 2e-2);
    }

    #[test]
    fn backward_requires_forward() {
        let mut block = ResidualBlock::new(Vec::new(), Vec::new());
        assert!(block.backward(&Tensor::ones(&[1, 2])).is_err());
    }
}
