//! Loss functions used by the backpropagation baselines.

use crate::{NnError, Result};
use ff_tensor::Tensor;

/// Result of [`softmax_cross_entropy`]: the scalar loss and the gradient with
/// respect to the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxCrossEntropyOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the logits, shape `[batch, classes]`.
    pub grad: Tensor,
    /// Per-sample predicted class (argmax of the logits).
    pub predictions: Vec<usize>,
}

/// Computes mean softmax cross-entropy loss and its gradient.
///
/// # Errors
///
/// Returns [`NnError::InvalidInput`] when the label count does not match the
/// batch size or a label is out of range.
///
/// # Examples
///
/// ```
/// use ff_nn::softmax_cross_entropy;
/// use ff_tensor::Tensor;
///
/// # fn main() -> Result<(), ff_nn::NnError> {
/// let logits = Tensor::from_vec(&[1, 3], vec![2.0, 0.0, -2.0])?;
/// let out = softmax_cross_entropy(&logits, &[0])?;
/// assert!(out.loss < 0.2);
/// assert_eq!(out.predictions, vec![0]);
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> Result<SoftmaxCrossEntropyOutput> {
    let batch = logits.rows();
    let classes = logits.cols();
    if labels.len() != batch {
        return Err(NnError::InvalidInput {
            layer: "softmax_cross_entropy",
            message: format!("{} labels for a batch of {}", labels.len(), batch),
        });
    }
    let mut grad = Tensor::zeros(&[batch, classes]);
    let mut loss = 0.0f64;
    let mut predictions = Vec::with_capacity(batch);
    for (i, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(NnError::InvalidInput {
                layer: "softmax_cross_entropy",
                message: format!("label {label} out of range for {classes} classes"),
            });
        }
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exp.iter().sum();
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = j;
            }
            let p = exp[j] / sum;
            grad.row_mut(i)[j] = (p - if j == label { 1.0 } else { 0.0 }) / batch as f32;
        }
        predictions.push(best);
        let p_label = exp[label] / sum;
        loss -= (p_label.max(1e-12) as f64).ln();
    }
    Ok(SoftmaxCrossEntropyOutput {
        loss: (loss / batch as f64) as f32,
        grad,
        predictions,
    })
}

/// Mean squared error between `prediction` and `target`, plus its gradient.
///
/// # Errors
///
/// Returns a shape-mismatch error when the operands differ in shape.
pub fn mse_loss(prediction: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    let diff = prediction.sub(target)?;
    let n = prediction.len().max(1) as f32;
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let out = softmax_cross_entropy(&logits, &[2, 0]).unwrap();
        for i in 0..2 {
            let s: f32 = out.grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(&[1, 4], vec![0.5, -0.3, 0.1, 0.9]).unwrap();
        let labels = [3usize];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for j in 0..4 {
            let mut plus = logits.clone();
            plus.data_mut()[j] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[j] -= eps;
            let lp = softmax_cross_entropy(&plus, &labels).unwrap().loss;
            let lm = softmax_cross_entropy(&minus, &labels).unwrap().loss;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (out.grad.data()[j] - numeric).abs() < 1e-3,
                "j={j}: {} vs {numeric}",
                out.grad.data()[j]
            );
        }
    }

    #[test]
    fn rejects_bad_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 9]).is_err());
    }

    #[test]
    fn predictions_are_argmax() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.1, 5.0, 0.2, 3.0, 1.0, 2.0]).unwrap();
        let out = softmax_cross_entropy(&logits, &[1, 0]).unwrap();
        assert_eq!(out.predictions, vec![1, 0]);
    }

    #[test]
    fn mse_loss_and_gradient() {
        let pred = Tensor::from_slice(&[2], &[1.0, 2.0]).unwrap();
        let target = Tensor::from_slice(&[2], &[0.0, 0.0]).unwrap();
        let (loss, grad) = mse_loss(&pred, &target).unwrap();
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
        assert!(mse_loss(&pred, &Tensor::zeros(&[3])).is_err());
    }
}
