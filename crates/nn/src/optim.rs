//! Optimizers operating on [`ParamRefMut`] handles.

use crate::layer::ParamRefMut;
use ff_tensor::Tensor;

/// A gradient-descent optimizer.
///
/// Implementations keep any per-parameter state (momentum, Adam moments)
/// indexed by the position of the parameter in the `params` vector, so the
/// caller must always pass parameters in the same order.
pub trait Optimizer {
    /// Applies one update step to every parameter and leaves the gradients
    /// untouched (callers usually `zero_grad` afterwards).
    ///
    /// Implementations must call [`ParamRefMut::mark_updated`] on every
    /// parameter they write so layers invalidate cached quantized weight
    /// state (packed INT8 GEMM plans) exactly when the values change.
    fn step(&mut self, params: &mut [ParamRefMut<'_>]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by LR-scaling schemes such as UI8's
    /// deviation-counteractive scaling).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
///
/// # Examples
///
/// ```
/// use ff_nn::{Optimizer, Sgd};
///
/// let sgd = Sgd::new(0.1, 0.9);
/// assert_eq!(sgd.learning_rate(), 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate and momentum
    /// coefficient (0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// The per-parameter momentum buffers, in the order [`Optimizer::step`]
    /// received the parameters. Empty until the first step.
    ///
    /// Checkpointing trainers persist these so a resumed run continues the
    /// exact same momentum trajectory as an uninterrupted one.
    pub fn velocity(&self) -> &[Tensor] {
        &self.velocity
    }

    /// Restores momentum buffers captured by [`Sgd::velocity`].
    ///
    /// Later parameters without a buffer are lazily (re)initialised to zero
    /// on the next step, exactly as on a fresh optimizer.
    pub fn set_velocity(&mut self, velocity: Vec<Tensor>) {
        self.velocity = velocity;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamRefMut<'_>]) {
        if self.velocity.len() < params.len() {
            for p in params.iter().skip(self.velocity.len()) {
                self.velocity.push(Tensor::zeros(p.value.shape()));
            }
        }
        for (i, p) in params.iter_mut().enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                v.scale_inplace(self.momentum);
                v.add_scaled_assign(p.grad, 1.0).expect("shape match");
                p.value.add_scaled_assign(v, -self.lr).expect("shape match");
            } else {
                p.value
                    .add_scaled_assign(p.grad, -self.lr)
                    .expect("shape match");
            }
            p.mark_updated();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with standard defaults (β₁=0.9, β₂=0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The per-parameter first-moment estimates, in the order
    /// [`Optimizer::step`] received the parameters. Empty until the first
    /// step.
    ///
    /// Checkpointing trainers persist these (together with
    /// [`Adam::second_moments`] and [`Adam::step_count`]) so a resumed run
    /// continues the exact same moment trajectory and bias correction as an
    /// uninterrupted one.
    pub fn first_moments(&self) -> &[Tensor] {
        &self.m
    }

    /// The per-parameter second-moment estimates (see
    /// [`Adam::first_moments`]).
    pub fn second_moments(&self) -> &[Tensor] {
        &self.v
    }

    /// Number of steps taken so far — the `t` of the bias-correction terms.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Restores state captured by [`Adam::first_moments`] /
    /// [`Adam::second_moments`] / [`Adam::step_count`].
    ///
    /// `m` and `v` must be the same length (they grow in lockstep); later
    /// parameters without buffers are lazily (re)initialised to zero on the
    /// next step, exactly as on a fresh optimizer.
    ///
    /// # Panics
    ///
    /// Panics when `m.len() != v.len()` — callers deserializing external
    /// state validate the lengths first.
    pub fn set_state(&mut self, m: Vec<Tensor>, v: Vec<Tensor>, step_count: u64) {
        assert_eq!(m.len(), v.len(), "Adam moment lists must have equal length");
        self.m = m;
        self.v = v;
        self.step_count = step_count;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamRefMut<'_>]) {
        if self.m.len() < params.len() {
            for p in params.iter().skip(self.m.len()) {
                self.m.push(Tensor::zeros(p.value.shape()));
                self.v.push(Tensor::zeros(p.value.shape()));
            }
        }
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (i, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((m_i, v_i), (w, g)) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(p.value.data_mut().iter_mut().zip(p.grad.data()))
            {
                *m_i = self.beta1 * *m_i + (1.0 - self.beta1) * g;
                *v_i = self.beta2 * *v_i + (1.0 - self.beta2) * g * g;
                let m_hat = *m_i / bias1;
                let v_hat = *v_i / bias2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            p.mark_updated();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_param(value: Tensor, grad: Tensor) -> (Tensor, Tensor) {
        (value, grad)
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let (mut w, mut g) = make_param(Tensor::ones(&[3]), Tensor::ones(&[3]));
        let mut sgd = Sgd::new(0.5, 0.0);
        sgd.step(&mut [ParamRefMut {
            value: &mut w,
            grad: &mut g,
            version: None,
        }]);
        assert_eq!(w.data(), &[0.5, 0.5, 0.5]);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let (mut w, mut g) = make_param(Tensor::zeros(&[1]), Tensor::ones(&[1]));
        let mut sgd = Sgd::new(1.0, 0.5);
        sgd.step(&mut [ParamRefMut {
            value: &mut w,
            grad: &mut g,
            version: None,
        }]);
        let after_one = w.data()[0];
        sgd.step(&mut [ParamRefMut {
            value: &mut w,
            grad: &mut g,
            version: None,
        }]);
        let delta_two = w.data()[0] - after_one;
        // second step is larger because of accumulated velocity
        assert!(delta_two.abs() > after_one.abs());
    }

    #[test]
    fn sgd_learning_rate_setter() {
        let mut sgd = Sgd::new(0.1, 0.0);
        sgd.set_learning_rate(0.01);
        assert_eq!(sgd.learning_rate(), 0.01);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimise f(w) = (w - 3)^2 with gradient 2(w - 3)
        let mut w = Tensor::zeros(&[1]);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let mut g = Tensor::from_slice(&[1], &[2.0 * (w.data()[0] - 3.0)]).unwrap();
            adam.step(&mut [ParamRefMut {
                value: &mut w,
                grad: &mut g,
                version: None,
            }]);
        }
        assert!((w.data()[0] - 3.0).abs() < 0.1, "w = {}", w.data()[0]);
        assert_eq!(adam.learning_rate(), 0.1);
    }

    #[test]
    fn adam_state_roundtrips_and_resumes_identically() {
        // Two optimizers stepping the same trajectory: one straight through,
        // one exported/imported halfway. The resumed one must produce
        // bit-identical updates (moments AND bias-correction step count).
        let grad_at = |w: f32| 2.0 * (w - 3.0);
        let run = |resume_at: Option<usize>| {
            let mut w = Tensor::zeros(&[1]);
            let mut adam = Adam::new(0.1);
            for step in 0..20 {
                if resume_at == Some(step) {
                    let (m, v, t) = (
                        adam.first_moments().to_vec(),
                        adam.second_moments().to_vec(),
                        adam.step_count(),
                    );
                    adam = Adam::new(0.1);
                    adam.set_state(m, v, t);
                }
                let mut g = Tensor::from_slice(&[1], &[grad_at(w.data()[0])]).unwrap();
                adam.step(&mut [ParamRefMut {
                    value: &mut w,
                    grad: &mut g,
                    version: None,
                }]);
            }
            w.data()[0].to_bits()
        };
        assert_eq!(run(None), run(Some(10)));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn adam_set_state_rejects_uneven_moments() {
        let mut adam = Adam::new(0.1);
        adam.set_state(vec![Tensor::zeros(&[1])], Vec::new(), 1);
    }

    #[test]
    fn adam_learning_rate_setter() {
        let mut adam = Adam::new(0.3);
        adam.set_learning_rate(0.05);
        assert_eq!(adam.learning_rate(), 0.05);
    }

    #[test]
    fn sgd_handles_growing_param_list() {
        let mut sgd = Sgd::new(0.1, 0.9);
        let (mut w1, mut g1) = make_param(Tensor::ones(&[2]), Tensor::ones(&[2]));
        sgd.step(&mut [ParamRefMut {
            value: &mut w1,
            grad: &mut g1,
            version: None,
        }]);
        let (mut w2, mut g2) = make_param(Tensor::ones(&[3]), Tensor::ones(&[3]));
        // now two params — velocity vector must grow
        sgd.step(&mut [
            ParamRefMut {
                value: &mut w1,
                grad: &mut g1,
                version: None,
            },
            ParamRefMut {
                value: &mut w2,
                grad: &mut g2,
                version: None,
            },
        ]);
        assert!(w2.data()[0] < 1.0);
    }
}
