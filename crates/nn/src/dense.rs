//! Fully-connected layer with optional fused ReLU and INT8 forward support.

use crate::layer::{ForwardMode, Layer, ParamRefMut};
use crate::{NnError, Result};
use ff_quant::plan::{int8_matmul_a_bt_planned, int8_matmul_at_b_planned, QGemmPlan};
use ff_quant::QuantTensor;
use ff_tensor::{init, linalg, Tensor};
use rand::Rng;

/// Site salt decorrelating the forward input-quantization stream from other
/// seeded-stochastic-rounding sites (see [`QuantTensor::quantize_seeded`]).
const SALT_FORWARD_INPUT: u64 = 0xD1;
/// Site salt for the backward gradient-quantization stream. Each backward
/// call in a step bumps a counter into the salt so the look-ahead scheme's
/// repeated backwards through one layer draw independent streams.
const SALT_BACKWARD_GRAD: u64 = 0xD2;

/// A dense (fully-connected) layer `y = act(W·x + b)`.
///
/// Weights are stored `[out_features, in_features]`. When `fused_relu` is
/// enabled the activation and its mask are handled inside the layer, which is
/// the granularity at which the Forward-Forward algorithm trains (one
/// goodness per ReLU block).
///
/// In [`ForwardMode::Int8`] the layer keeps a cached [`QGemmPlan`] for its
/// weight matrix: the weight is quantized and packed into GEMM panels once,
/// then reused by every forward pass (and, during prediction, by every
/// candidate-label pass) until an optimizer bumps the layer's parameter
/// version. The quantized input of the most recent INT8 forward is likewise
/// wrapped in a plan so the backward weight-gradient GEMM — which the
/// look-ahead scheme runs twice per step — packs the input at most once.
///
/// # Examples
///
/// ```
/// use ff_nn::{Dense, ForwardMode, Layer};
/// use ff_tensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ff_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut dense = Dense::new(8, 4, true, &mut rng);
/// let y = dense.forward(&Tensor::ones(&[3, 8]), ForwardMode::Fp32)?;
/// assert_eq!(y.shape(), &[3, 4]);
/// assert!(y.min_value() >= 0.0); // fused ReLU
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    fused_relu: bool,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    /// Bumped whenever `weight` changes (optimizer steps via
    /// [`ParamRefMut::mark_updated`], `set_weight`); keys `weight_plan`.
    weight_version: u64,
    /// Cached quantized + packed weight panels, valid while its version tag
    /// equals `weight_version`.
    weight_plan: Option<QGemmPlan>,
    /// How many times the weight plan has been (re)built — exposed for tests
    /// asserting the cache is neither stale nor rebuilt needlessly.
    weight_plan_builds: u64,
    cached_input: Option<Tensor>,
    /// Quantized input of the latest INT8 forward, wrapped in a plan so the
    /// backward `gW` GEMM packs it at most once per step.
    input_plan: Option<QGemmPlan>,
    cached_mask: Option<Tensor>,
    last_mode: ForwardMode,
    /// Backward calls since the last forward (the look-ahead scheme runs up
    /// to two per step); folded into the gradient-quantization salt so each
    /// call draws an independent seeded rounding stream.
    backward_calls: u64,
}

impl Dense {
    /// Creates a dense layer with Kaiming-normal weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        fused_relu: bool,
        rng: &mut R,
    ) -> Self {
        let weight = init::kaiming_normal(&[out_features, in_features], in_features, rng);
        Dense {
            in_features,
            out_features,
            fused_relu,
            weight,
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            weight_version: 0,
            weight_plan: None,
            weight_plan_builds: 0,
            cached_input: None,
            input_plan: None,
            cached_mask: None,
            last_mode: ForwardMode::Fp32,
            backward_calls: 0,
        }
    }

    /// The seeded-rounding salt for the next backward gradient quantization.
    fn backward_salt(&self) -> u64 {
        SALT_BACKWARD_GRAD.wrapping_add(self.backward_calls.wrapping_mul(0x100))
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// `true` when the layer applies a fused ReLU.
    pub fn has_fused_relu(&self) -> bool {
        self.fused_relu
    }

    /// Immutable access to the weight matrix `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Immutable access to the accumulated weight gradient.
    pub fn grad_weight(&self) -> &Tensor {
        &self.grad_weight
    }

    /// Immutable access to the bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The layer's parameter version: bumped whenever the weight matrix is
    /// mutated through [`set_weight`](Dense::set_weight) or an optimizer step.
    pub fn weight_version(&self) -> u64 {
        self.weight_version
    }

    /// How many times the cached INT8 weight plan has been built. Stays
    /// constant across repeated forwards with unchanged weights; increments
    /// exactly once after each weight update (lazily, on the next INT8
    /// forward).
    pub fn weight_plan_builds(&self) -> u64 {
        self.weight_plan_builds
    }

    /// Replaces the weight matrix (used by tests and model surgery).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidInput`] when the shape differs from
    /// `[out_features, in_features]`.
    pub fn set_weight(&mut self, weight: Tensor) -> Result<()> {
        if weight.shape() != [self.out_features, self.in_features] {
            return Err(NnError::InvalidInput {
                layer: "dense",
                message: format!(
                    "weight shape {:?} does not match [{}, {}]",
                    weight.shape(),
                    self.out_features,
                    self.in_features
                ),
            });
        }
        self.weight = weight;
        self.weight_version = self.weight_version.wrapping_add(1);
        Ok(())
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.ndim() != 2 || input.shape()[1] != self.in_features {
            return Err(NnError::InvalidInput {
                layer: "dense",
                message: format!(
                    "expected [batch, {}], got {:?}",
                    self.in_features,
                    input.shape()
                ),
            });
        }
        Ok(())
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, mode: ForwardMode) -> Result<Tensor> {
        self.check_input(input)?;
        if mode != self.last_mode {
            // A mode switch invalidates every cached forward artefact so a
            // later backward can never mix FP32 state with INT8 state (or
            // read a quantized input left over from before the switch).
            self.cached_input = None;
            self.input_plan = None;
            self.cached_mask = None;
        }
        self.last_mode = mode;
        // Bias add and ReLU (+ gradient mask) are fused into the GEMM
        // epilogue, so no separate pass touches the output afterwards.
        let (out, mask) = match mode {
            ForwardMode::Fp32 => {
                self.input_plan = None;
                linalg::matmul_a_bt_fused(input, &self.weight, Some(&self.bias), self.fused_relu)?
            }
            ForwardMode::Int8(rounding) => {
                let q_input = QuantTensor::quantize_seeded(input, rounding, SALT_FORWARD_INPUT);
                // Reuse the packed weight panels while the weights are
                // unchanged; rebuild (deterministically) once per optimizer
                // step, so the per-step cost scales with activations only.
                if self.weight_plan.as_ref().map(QGemmPlan::version) != Some(self.weight_version) {
                    self.weight_plan =
                        Some(QGemmPlan::from_tensor(&self.weight, self.weight_version)?);
                    self.weight_plan_builds += 1;
                }
                let plan = self.weight_plan.as_mut().expect("weight plan just ensured");
                let out =
                    int8_matmul_a_bt_planned(&q_input, plan, Some(&self.bias), self.fused_relu)?;
                self.input_plan = Some(QGemmPlan::from_quant(q_input, 0)?);
                out
            }
        };
        self.cached_input = Some(input.clone());
        self.cached_mask = mask;
        self.backward_calls = 0;
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.backward_calls = self.backward_calls.wrapping_add(1);
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::MissingForwardState { layer: "dense" })?;
        let grad_pre = match &self.cached_mask {
            Some(mask) => grad_output.mul_elem(mask)?,
            None => grad_output.clone(),
        };
        // Parameter gradients. In INT8 mode both operands of the gW GEMM are
        // quantized, matching the paper's dataflow (Fig. 4).
        let (gw, grad_input) = match self.last_mode {
            ForwardMode::Fp32 => {
                let gw = linalg::matmul_at_b(&grad_pre, input)?;
                let gi = linalg::matmul(&grad_pre, &self.weight)?;
                (gw, gi)
            }
            ForwardMode::Int8(rounding) => {
                let q_grad =
                    QuantTensor::quantize_seeded(&grad_pre, rounding, self.backward_salt());
                let input_plan = self
                    .input_plan
                    .as_mut()
                    .ok_or(NnError::MissingForwardState { layer: "dense" })?;
                // gW[o, i] = Σ_batch gY[b, o] · A[b, i] — an INT8 GEMM with i32
                // accumulation over the quantized gradient and the forward
                // pass's cached input plan (packed once, reused by the second
                // look-ahead backward).
                let gw = int8_matmul_at_b_planned(&q_grad, input_plan)?;
                let gi = linalg::matmul(&q_grad.dequantize(), &self.weight)?;
                (gw, gi)
            }
        };
        self.grad_weight.add_assign(&gw)?;
        self.grad_bias.add_assign(&grad_pre.sum_axis0())?;
        Ok(grad_input)
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        vec![
            ParamRefMut {
                value: &mut self.weight,
                grad: &mut self.grad_weight,
                version: Some(&mut self.weight_version),
            },
            ParamRefMut {
                value: &mut self.bias,
                grad: &mut self.grad_bias,
                // Bias is applied in fp32 during the epilogue, so bias
                // updates never invalidate the packed weight plan.
                version: None,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.out_features * self.in_features + self.out_features
    }

    fn forward_macs(&self, batch: usize) -> u64 {
        (batch * self.in_features * self.out_features) as u64
    }

    fn snapshot(&self) -> Option<crate::LayerSnapshot> {
        // Deterministic nearest rounding: the same codes a cached weight
        // plan ([`QGemmPlan::from_tensor`]) would hold for these weights, so
        // freezing is a pure function of the trained parameters.
        Some(crate::LayerSnapshot::Dense {
            weight: QuantTensor::quantize(&self.weight, ff_quant::Rounding::Nearest),
            bias: self.bias.clone(),
            relu: self.fused_relu,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimizer, Sgd};
    use ff_quant::{int8_matmul_a_bt_fused, Rounding};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// What an uncached INT8 forward would produce for the layer's current
    /// parameters: quantize weight and input from scratch, no plan involved.
    fn uncached_int8_forward(layer: &Dense, x: &Tensor) -> Tensor {
        let q_x = QuantTensor::quantize(x, Rounding::Nearest);
        let q_w = QuantTensor::quantize(layer.weight(), Rounding::Nearest);
        int8_matmul_a_bt_fused(&q_x, &q_w, Some(layer.bias()), layer.has_fused_relu())
            .unwrap()
            .0
    }

    #[test]
    fn forward_shape_and_relu() {
        let mut layer = Dense::new(3, 2, true, &mut rng());
        let x = Tensor::from_vec(&[2, 3], vec![1., -1., 0.5, -0.5, 2., -2.]).unwrap();
        let y = layer.forward(&x, ForwardMode::Fp32).unwrap();
        assert_eq!(y.shape(), &[2, 2]);
        assert!(y.min_value() >= 0.0);
    }

    #[test]
    fn rejects_bad_input_shape() {
        let mut layer = Dense::new(3, 2, false, &mut rng());
        assert!(layer
            .forward(&Tensor::ones(&[2, 4]), ForwardMode::Fp32)
            .is_err());
        assert!(layer
            .forward(&Tensor::ones(&[4]), ForwardMode::Fp32)
            .is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = Dense::new(3, 2, false, &mut rng());
        assert!(matches!(
            layer.backward(&Tensor::ones(&[1, 2])),
            Err(NnError::MissingForwardState { .. })
        ));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut layer = Dense::new(4, 3, false, &mut rng());
        let x = init::uniform(&[2, 4], -1.0, 1.0, &mut rng());
        // scalar loss L = sum(y)
        let y = layer.forward(&x, ForwardMode::Fp32).unwrap();
        let grad_out = Tensor::ones(y.shape());
        layer.zero_grad();
        let grad_in = layer.backward(&grad_out).unwrap();

        let eps = 1e-3f32;
        // check dL/dW[0,1]
        let analytic = layer.grad_weight().at2(0, 1).unwrap();
        let mut plus = layer.clone();
        let mut w = plus.weight().clone();
        w.set2(0, 1, w.at2(0, 1).unwrap() + eps).unwrap();
        plus.set_weight(w).unwrap();
        let y_plus = plus.forward(&x, ForwardMode::Fp32).unwrap().sum();
        let mut minus = layer.clone();
        let mut w = minus.weight().clone();
        w.set2(0, 1, w.at2(0, 1).unwrap() - eps).unwrap();
        minus.set_weight(w).unwrap();
        let y_minus = minus.forward(&x, ForwardMode::Fp32).unwrap().sum();
        let numeric = (y_plus - y_minus) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );

        // check dL/dx[0,2] numerically
        let analytic_in = grad_in.at2(0, 2).unwrap();
        let mut x_plus = x.clone();
        x_plus.set2(0, 2, x.at2(0, 2).unwrap() + eps).unwrap();
        let mut x_minus = x.clone();
        x_minus.set2(0, 2, x.at2(0, 2).unwrap() - eps).unwrap();
        let mut probe = layer.clone();
        let lp = probe.forward(&x_plus, ForwardMode::Fp32).unwrap().sum();
        let lm = probe.forward(&x_minus, ForwardMode::Fp32).unwrap().sum();
        let numeric_in = (lp - lm) / (2.0 * eps);
        assert!((analytic_in - numeric_in).abs() < 1e-2);
    }

    #[test]
    fn int8_forward_approximates_fp32() {
        let mut layer = Dense::new(16, 8, true, &mut rng());
        let x = init::uniform(&[4, 16], -1.0, 1.0, &mut rng());
        let y32 = layer.forward(&x, ForwardMode::Fp32).unwrap();
        let y8 = layer
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        let rel = y32.sub(&y8).unwrap().frobenius_norm() / (y32.frobenius_norm() + 1e-6);
        assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn int8_backward_accumulates_grads() {
        let mut layer = Dense::new(8, 4, true, &mut rng());
        let x = init::uniform(&[4, 8], -1.0, 1.0, &mut rng());
        let y = layer
            .forward(&x, ForwardMode::Int8(Rounding::Stochastic))
            .unwrap();
        layer.backward(&Tensor::ones(y.shape())).unwrap();
        assert!(layer.grad_weight().max_abs() > 0.0);
    }

    #[test]
    fn zero_grad_resets_accumulators() {
        let mut layer = Dense::new(4, 2, false, &mut rng());
        let x = Tensor::ones(&[2, 4]);
        let y = layer.forward(&x, ForwardMode::Fp32).unwrap();
        layer.backward(&Tensor::ones(y.shape())).unwrap();
        assert!(layer.grad_weight().max_abs() > 0.0);
        layer.zero_grad();
        assert_eq!(layer.grad_weight().max_abs(), 0.0);
    }

    #[test]
    fn param_count_and_macs() {
        let layer = Dense::new(10, 5, false, &mut rng());
        assert_eq!(layer.param_count(), 55);
        assert_eq!(layer.forward_macs(2), 100);
    }

    #[test]
    fn set_weight_validates_shape() {
        let mut layer = Dense::new(3, 2, false, &mut rng());
        assert!(layer.set_weight(Tensor::zeros(&[2, 3])).is_ok());
        assert!(layer.set_weight(Tensor::zeros(&[3, 2])).is_err());
    }

    #[test]
    fn weight_plan_rebuilt_exactly_once_per_step() {
        let mut layer = Dense::new(12, 6, true, &mut rng());
        let x = init::uniform(&[4, 12], -1.0, 1.0, &mut rng());
        assert_eq!(layer.weight_plan_builds(), 0);
        // Back-to-back forwards (the predict path runs one per candidate
        // label) must share one plan build.
        for _ in 0..3 {
            layer
                .forward(&x, ForwardMode::Int8(Rounding::Nearest))
                .unwrap();
        }
        assert_eq!(layer.weight_plan_builds(), 1);
        let v0 = layer.weight_version();
        // An optimizer step bumps the version and forces exactly one rebuild
        // on the next forward.
        let y = layer
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        layer.backward(&Tensor::ones(y.shape())).unwrap();
        let mut sgd = Sgd::new(0.1, 0.0);
        sgd.step(&mut layer.params_mut());
        assert_eq!(layer.weight_version(), v0 + 1);
        assert_eq!(layer.weight_plan_builds(), 1, "rebuild is lazy");
        layer
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        layer
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        assert_eq!(layer.weight_plan_builds(), 2);
    }

    #[test]
    fn cached_plan_forward_is_bit_exact_with_uncached() {
        let mut layer = Dense::new(16, 8, true, &mut rng());
        let x = init::uniform(&[4, 16], -1.0, 1.0, &mut rng());
        // Cached path (second forward reuses the plan) must equal a
        // from-scratch quantize + GEMM of the same parameters.
        layer
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        let cached = layer
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        assert_eq!(cached.data(), uncached_int8_forward(&layer, &x).data());
    }

    #[test]
    fn set_weight_invalidates_cached_plan() {
        let mut layer = Dense::new(8, 4, false, &mut rng());
        let x = init::uniform(&[2, 8], -1.0, 1.0, &mut rng());
        layer
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        let w2 = init::uniform(&[4, 8], -1.0, 1.0, &mut rng());
        layer.set_weight(w2).unwrap();
        let y = layer
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        assert_eq!(layer.weight_plan_builds(), 2);
        assert_eq!(y.data(), uncached_int8_forward(&layer, &x).data());
    }

    #[test]
    fn alternating_fp32_int8_steps_stay_consistent() {
        // Regression test for the stale-cache footgun: mode switches must
        // invalidate all cached quantized state, and optimizer steps taken in
        // *either* mode must invalidate the weight plan, so an INT8 forward
        // after any interleaving matches an uncached computation bit-exactly.
        let mut layer = Dense::new(10, 5, true, &mut rng());
        let x = init::uniform(&[3, 10], -1.0, 1.0, &mut rng());
        let mut sgd = Sgd::new(0.05, 0.0);
        for step in 0..6 {
            let mode = if step % 2 == 0 {
                ForwardMode::Fp32
            } else {
                ForwardMode::Int8(Rounding::Nearest)
            };
            let y = layer.forward(&x, mode).unwrap();
            if mode.is_int8() {
                assert_eq!(
                    y.data(),
                    uncached_int8_forward(&layer, &x).data(),
                    "stale plan surfaced at step {step}"
                );
            }
            layer.backward(&Tensor::ones(y.shape())).unwrap();
            sgd.step(&mut layer.params_mut());
            layer.zero_grad();
        }
    }

    #[test]
    fn mode_switch_clears_quantized_state() {
        let mut layer = Dense::new(6, 3, false, &mut rng());
        let x = init::uniform(&[2, 6], -1.0, 1.0, &mut rng());
        layer
            .forward(&x, ForwardMode::Int8(Rounding::Nearest))
            .unwrap();
        assert!(layer.input_plan.is_some());
        layer.forward(&x, ForwardMode::Fp32).unwrap();
        assert!(
            layer.input_plan.is_none(),
            "switching to Fp32 must drop the quantized input plan"
        );
        // Backward after the switch uses the fp32 path and succeeds.
        layer.backward(&Tensor::ones(&[2, 3])).unwrap();
    }

    #[test]
    fn snapshot_is_deterministic_and_matches_weight_plan_codes() {
        let layer = Dense::new(6, 4, true, &mut rng());
        let (s1, s2) = (layer.snapshot().unwrap(), layer.snapshot().unwrap());
        let (
            crate::LayerSnapshot::Dense { weight: w1, .. },
            crate::LayerSnapshot::Dense {
                weight: w2,
                bias,
                relu,
            },
        ) = (s1, s2)
        else {
            panic!("dense layers snapshot as Dense");
        };
        assert_eq!(w1.codes(), w2.codes(), "freezing is deterministic");
        assert_eq!(w1.scale(), w2.scale());
        assert_eq!(bias.data(), layer.bias().data());
        assert!(relu);
        // Identical to the codes a training-time weight plan would cache.
        let plan = ff_quant::QGemmPlan::from_tensor(layer.weight(), 0).unwrap();
        assert_eq!(w1.codes(), plan.quant().codes());
        assert_eq!(w1.scale(), plan.scale());
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut layer = Dense::new(3, 2, false, &mut rng());
        let x = Tensor::ones(&[1, 3]);
        let y = layer.forward(&x, ForwardMode::Fp32).unwrap();
        layer.backward(&Tensor::ones(y.shape())).unwrap();
        let once = layer.grad_weight().clone();
        layer.backward(&Tensor::ones(y.shape())).unwrap();
        let twice = layer.grad_weight().clone();
        for (a, b) in once.data().iter().zip(twice.data()) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
    }
}
