//! # ff-trace
//!
//! Observability substrate for the FF-INT8 serving stack: a unified
//! [`MetricsRegistry`] of named metric handles, per-request stage tracing
//! ([`TraceHandle`] / [`RequestTrace`]), and the bounded-memory
//! [`FlightRecorder`] the `FF8P` `TraceDump` endpoint reads.
//!
//! The stack spans accept → auth → admission → micro-batch queue → GEMM
//! wave → reply writer; endpoint-level counters cannot say *where* time
//! went when queueing delay explodes near saturation. This crate adds that
//! attribution in two complementary forms:
//!
//! 1. **Always-on stage histograms** ([`StageHistograms`]): every served
//!    request records queue-wait, batch-assembly, GEMM and reply-write
//!    durations into shared log-linear histograms — cheap enough to leave
//!    on (a handful of atomics plus one short mutex per batch), and folded
//!    into the `FF8P` stats reply.
//! 2. **Sampled per-request traces**: a [`FlightRecorder`] hands out
//!    [`TraceHandle`]s stamped with monotonic timestamps at each
//!    [`Stage`]; completed (or abandoned) traces land in a fixed-capacity
//!    ring. Sampling is seeded and deterministic ([`Sampler`]), with an
//!    always-capture path for requests slower than a configurable
//!    threshold — bounded memory, replayable decisions.
//!
//! Everything is std-only, `forbid(unsafe_code)`, and free of background
//! threads: stamping is a compare-exchange per stage, and a trace commits
//! to the ring when its last handle drops — so a connection killed
//! mid-request still commits its (incomplete, flagged) trace.
//!
//! The same substrate extends past serving into cluster-wide training
//! observability: [`ClusterFlightRecorder`] rings per-step
//! [`ClusterSpan`]s whose trace ids ride the `FF8D` training protocol and
//! collect stamps from coordinator *and* workers, and [`WindowedSeries`]
//! turns any registry's lifetime totals into per-window rates and
//! percentiles, surfaced by [`MetricsExporter::bind_windowed`].
//!
//! # Examples
//!
//! ```
//! use ff_trace::{FlightRecorder, MetricsRegistry, Stage, TraceSettings};
//!
//! let metrics = MetricsRegistry::new();
//! metrics.counter("serve.requests").add(3);
//! assert!(metrics.expose().contains("serve.requests counter 3"));
//!
//! let recorder = FlightRecorder::new(TraceSettings {
//!     sample_per_sec: u32::MAX, // deterministic: every request sampled
//!     ..TraceSettings::default()
//! });
//! let trace = recorder.begin(0).expect("sampled");
//! trace.stamp(Stage::Admit);
//! trace.stamp(Stage::Enqueue);
//! trace.stamp(Stage::WaveStart);
//! trace.stamp(Stage::GemmDone);
//! trace.stamp(Stage::ReplyWritten);
//! drop(trace); // last handle gone: the trace commits to the ring
//! let recent = recorder.recent(0);
//! assert_eq!(recent.len(), 1);
//! assert!(recent[0].completed && recent[0].is_monotonic());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod exporter;
mod recorder;
mod registry;
mod series;
mod stage;
mod trace;

pub use cluster::{ClusterFlightRecorder, ClusterSpan, ShardSpan};
pub use exporter::MetricsExporter;
pub use recorder::{FlightRecorder, Sampler};
pub use registry::{
    DeepMetricValue, MetricValue, MetricsRegistry, MetricsSnapshot, SharedHistogram,
};
pub use series::WindowedSeries;
pub use stage::{Stage, StageHistograms, StageSummaries, STAGE_COUNT};
pub use trace::{RequestTrace, TraceHandle, TraceSettings};
