//! The bounded-memory flight recorder and its deterministic sampler.
//!
//! The recorder is the only place traces are stored: a fixed-capacity ring
//! of committed [`RequestTrace`]s, evicting oldest-first, plus the seeded
//! sampling decision that picks which requests get a trace at all. Memory
//! is bounded by `capacity × sizeof(RequestTrace)` regardless of load, and
//! with the per-second bucket bypassed (`sample_per_sec == u32::MAX`) the
//! decision sequence is a pure function of `(seed, sequence number)` —
//! replayable in tests.

use crate::trace::{TraceCell, TraceHandle, TraceSettings};
use crate::RequestTrace;
use ff_metrics::Counter;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// SplitMix64: a tiny, statistically solid mixer — one multiply-xor-shift
/// chain per decision, no state beyond the input. Shared with the cluster
/// recorder, which derives per-step trace ids from the same mixer.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded, deterministic sampling decision.
///
/// Two independent filters, both of which must pass:
///
/// 1. **Stride** (deterministic): sample iff
///    `splitmix64(seed ^ seq) % stride == 0` — a pseudo-random but fully
///    replayable 1-in-`stride` thinning keyed by the request's sequence
///    number.
/// 2. **Budget** (wall-clock): a token bucket of `sample_per_sec` tokens
///    refilled each second, so a traffic spike cannot flood the ring with
///    near-identical traces. `u32::MAX` bypasses the bucket entirely,
///    making the whole decision deterministic.
#[derive(Debug)]
pub struct Sampler {
    per_sec: u32,
    stride: u64,
    seed: u64,
    /// `(window start, tokens spent in window)` — touched only after the
    /// stride filter passes, so the common non-sampled path is lock-free.
    bucket: Mutex<(Instant, u32)>,
}

impl Sampler {
    /// Builds the sampler for `settings`.
    pub fn new(settings: &TraceSettings) -> Self {
        Sampler {
            per_sec: settings.sample_per_sec,
            stride: settings.sample_stride.max(1),
            seed: settings.seed,
            bucket: Mutex::new((Instant::now(), 0)),
        }
    }

    /// The deterministic part of the decision alone — what tests replay.
    pub fn stride_admits(&self, seq: u64) -> bool {
        self.stride <= 1 || splitmix64(self.seed ^ seq).is_multiple_of(self.stride)
    }

    /// Full sampling decision for sequence number `seq`.
    pub fn admit(&self, seq: u64) -> bool {
        if self.per_sec == 0 || !self.stride_admits(seq) {
            return false;
        }
        if self.per_sec == u32::MAX {
            return true;
        }
        let mut bucket = self.bucket.lock().expect("sampler bucket lock poisoned");
        let (window_start, spent) = &mut *bucket;
        if window_start.elapsed().as_secs() >= 1 {
            *window_start = Instant::now();
            *spent = 0;
        }
        if *spent < self.per_sec {
            *spent += 1;
            true
        } else {
            false
        }
    }
}

pub(crate) struct RecorderInner {
    pub(crate) settings: TraceSettings,
    ring: Mutex<VecDeque<RequestTrace>>,
    seq: AtomicU64,
    /// Traces begun but not yet committed — chaos tests assert this drains
    /// to zero, proving killed connections don't leak cells.
    pub(crate) live: AtomicU64,
    dropped: Counter,
    sampler: Sampler,
}

impl RecorderInner {
    /// Commits a finished trace into the ring. Uses `try_lock` so a
    /// reader holding the ring for a dump can never block a serving
    /// thread mid-drop — contended commits are counted, not waited for.
    pub(crate) fn commit(&self, trace: RequestTrace) {
        match self.ring.try_lock() {
            Ok(mut ring) => {
                if self.settings.capacity == 0 {
                    self.dropped.inc();
                    return;
                }
                while ring.len() >= self.settings.capacity {
                    ring.pop_front();
                }
                ring.push_back(trace);
            }
            Err(_) => self.dropped.inc(),
        }
    }
}

/// The fixed-capacity, concurrent ring of committed request traces.
///
/// Cheap to clone (an [`Arc`]); all clones share one ring. Writers never
/// block: the commit path uses `try_lock` and counts, rather than waits
/// out, contention. See the [crate docs](crate) for the begin → stamp →
/// drop lifecycle.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("settings", &self.inner.settings)
            .field("len", &self.len())
            .field("live", &self.live())
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder with the given settings.
    pub fn new(settings: TraceSettings) -> Self {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                sampler: Sampler::new(&settings),
                settings,
                ring: Mutex::new(VecDeque::new()),
                seq: AtomicU64::new(0),
                live: AtomicU64::new(0),
                dropped: Counter::new(),
            }),
        }
    }

    /// The settings the recorder was built with.
    pub fn settings(&self) -> TraceSettings {
        self.inner.settings
    }

    /// Starts a trace for a new request against `model_id`, stamping
    /// [`crate::Stage::Recv`] implicitly at time zero.
    ///
    /// Returns `None` — costing one atomic increment and no allocation —
    /// when tracing is disabled, or when the request is not sampled and no
    /// slow threshold is armed (nothing could ever retain the trace).
    pub fn begin(&self, model_id: u16) -> Option<TraceHandle> {
        if !self.inner.settings.enabled {
            return None;
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let sampled = self.inner.sampler.admit(seq);
        if !sampled && self.inner.settings.slow_threshold.is_none() {
            return None;
        }
        self.inner.live.fetch_add(1, Ordering::AcqRel);
        let cell = TraceCell::new(seq, model_id, sampled, Arc::clone(&self.inner));
        let handle = TraceHandle {
            cell: Arc::new(cell),
        };
        handle.stamp_at(crate::Stage::Recv, handle.cell.start);
        Some(handle)
    }

    /// The most recent `max` committed traces in commit (chronological)
    /// order; `0` returns everything in the ring.
    pub fn recent(&self, max: usize) -> Vec<RequestTrace> {
        let ring = self.lock_ring();
        let take = if max == 0 {
            ring.len()
        } else {
            max.min(ring.len())
        };
        ring.iter().skip(ring.len() - take).cloned().collect()
    }

    /// Number of committed traces currently in the ring.
    pub fn len(&self) -> usize {
        self.lock_ring().len()
    }

    /// `true` when the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.lock_ring().is_empty()
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.settings.capacity
    }

    /// Traces begun but not yet committed. Drains to zero once every
    /// in-flight request's handles drop — the chaos suite's leak check.
    pub fn live(&self) -> u64 {
        self.inner.live.load(Ordering::Acquire)
    }

    /// Commits lost to ring contention (`try_lock` failure) or a
    /// zero-capacity ring.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// The shared counter behind [`FlightRecorder::dropped`], for
    /// registration in a [`crate::MetricsRegistry`].
    pub fn dropped_counter(&self) -> Counter {
        self.inner.dropped.clone()
    }

    /// Total traces begun (sampled or not) — the sequence-number
    /// high-water mark.
    pub fn begun(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    fn lock_ring(&self) -> std::sync::MutexGuard<'_, VecDeque<RequestTrace>> {
        self.inner.ring.lock().expect("recorder ring lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stage;
    use std::time::Duration;

    fn deterministic(stride: u64, seed: u64) -> TraceSettings {
        TraceSettings {
            sample_per_sec: u32::MAX,
            sample_stride: stride,
            seed,
            ..TraceSettings::default()
        }
    }

    #[test]
    fn disabled_recorder_hands_out_nothing() {
        let recorder = FlightRecorder::new(TraceSettings::disabled());
        assert!(recorder.begin(0).is_none());
        assert_eq!(recorder.live(), 0);
        assert_eq!(recorder.begun(), 0);
    }

    #[test]
    fn sampling_off_without_slow_threshold_traces_nothing() {
        let recorder = FlightRecorder::new(TraceSettings {
            sample_per_sec: 0,
            ..TraceSettings::default()
        });
        assert!(recorder.begin(0).is_none());
        // Sequence numbers still advance so a later re-enable stays aligned.
        assert_eq!(recorder.begun(), 1);
    }

    #[test]
    fn slow_threshold_retains_unsampled_requests() {
        let recorder = FlightRecorder::new(TraceSettings {
            sample_per_sec: 0,
            slow_threshold: Some(Duration::from_millis(5)),
            ..TraceSettings::default()
        });
        let trace = recorder.begin(2).expect("slow threshold arms tracing");
        assert!(!trace.sampled());
        std::thread::sleep(Duration::from_millis(10));
        drop(trace);
        let committed = recorder.recent(0);
        assert_eq!(committed.len(), 1);
        assert!(committed[0].slow && !committed[0].sampled);

        // A fast request under the same settings is discarded at commit.
        let trace = recorder.begin(2).expect("armed");
        drop(trace);
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.live(), 0);
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let recorder = FlightRecorder::new(TraceSettings {
            capacity: 4,
            ..deterministic(1, 0)
        });
        for model in 0..10u16 {
            let trace = recorder.begin(model).expect("sampled");
            trace.stamp(Stage::ReplyWritten);
            drop(trace);
        }
        let recent = recorder.recent(0);
        assert_eq!(recent.len(), 4);
        let seqs: Vec<u64> = recent.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9], "oldest evicted, order preserved");
        assert_eq!(recorder.recent(2).len(), 2);
        assert_eq!(recorder.recent(2)[0].seq, 8);
        assert_eq!(recorder.recent(100).len(), 4);
    }

    #[test]
    fn stride_sampling_is_deterministic_from_the_seed() {
        let settings = deterministic(4, 0xFEED);
        let a = FlightRecorder::new(settings);
        let b = FlightRecorder::new(settings);
        let run = |recorder: &FlightRecorder| -> Vec<u64> {
            let mut kept = Vec::new();
            for model in 0..200u16 {
                if let Some(trace) = recorder.begin(model) {
                    kept.push(trace.seq());
                }
            }
            kept
        };
        let kept_a = run(&a);
        let kept_b = run(&b);
        assert_eq!(kept_a, kept_b, "same seed, same decisions");
        assert!(!kept_a.is_empty() && kept_a.len() < 200, "stride thins");
        // A different seed picks a different subset.
        let c = FlightRecorder::new(deterministic(4, 0xBEEF));
        assert_ne!(run(&c), kept_a);
        // The replayable decision matches the public stride predicate.
        let sampler = Sampler::new(&settings);
        for seq in 0..200u64 {
            assert_eq!(kept_a.contains(&seq), sampler.stride_admits(seq));
        }
    }

    #[test]
    fn token_bucket_caps_samples_per_window() {
        let recorder = FlightRecorder::new(TraceSettings {
            sample_per_sec: 3,
            ..TraceSettings::default()
        });
        let sampled = (0..50).filter(|_| recorder.begin(0).is_some()).count();
        assert_eq!(sampled, 3, "bucket admits exactly per_sec in one window");
    }

    #[test]
    fn concurrent_writers_never_block_or_tear() {
        let recorder = FlightRecorder::new(TraceSettings {
            capacity: 64,
            ..deterministic(1, 0)
        });
        std::thread::scope(|scope| {
            for thread in 0..8u16 {
                let recorder = recorder.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let trace = recorder.begin(thread).expect("sampled");
                        trace.stamp(Stage::Admit);
                        trace.stamp(Stage::Enqueue);
                        trace.stamp(Stage::WaveStart);
                        trace.stamp(Stage::GemmDone);
                        trace.stamp(Stage::ReplyWritten);
                    }
                });
            }
        });
        assert_eq!(recorder.live(), 0, "every begun trace committed");
        let committed = 800 - recorder.dropped();
        assert_eq!(
            recorder.len() as u64,
            committed.min(64),
            "ring holds the newest committed traces up to capacity"
        );
        // No torn entries: every committed trace is internally consistent.
        for trace in recorder.recent(0) {
            assert!(trace.completed, "all stages were stamped before drop");
            assert!(trace.is_monotonic());
        }
        assert_eq!(recorder.begun(), 800);
    }

    #[test]
    fn commit_survives_a_reader_holding_the_ring() {
        let recorder = FlightRecorder::new(deterministic(1, 0));
        let guard = recorder.inner.ring.lock().unwrap();
        let trace = recorder.begin(0).expect("sampled");
        drop(trace); // try_lock fails → counted, not deadlocked
        drop(guard);
        assert_eq!(recorder.dropped(), 1);
        assert_eq!(recorder.len(), 0);
        assert_eq!(recorder.live(), 0);
    }
}
