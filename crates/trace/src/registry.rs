//! The unified metrics registry: named [`Counter`] / [`Gauge`] /
//! histogram handles, atomic snapshots, and the stable text exposition
//! format the `FF8P` `MetricsDump` endpoint serves.
//!
//! Subsystems either mint a handle through the registry
//! ([`MetricsRegistry::counter`] is get-or-register, so two callers naming
//! the same metric share one cell) or register a handle they already own
//! ([`MetricsRegistry::register_counter`]) — which is how the serving
//! stack's pre-existing ad-hoc counters (shed counts, per-model swap and
//! request counts, registry version gauges) fold into one snapshot without
//! moving their hot-path call sites.

use ff_metrics::{Counter, Gauge, LatencyHistogram, LatencySummary};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A cloneable, thread-safe latency histogram handle — the shared-ownership
/// form of [`ff_metrics::LatencyHistogram`], recordable from any thread.
///
/// Clones share one histogram. Recording takes a short mutex (the histogram
/// update itself is a few adds); readers take the same mutex momentarily
/// for a [`SharedHistogram::summary`].
///
/// # Examples
///
/// ```
/// use ff_trace::SharedHistogram;
/// use std::time::Duration;
///
/// let hist = SharedHistogram::new();
/// let writer = hist.clone();
/// writer.record(Duration::from_micros(250));
/// assert_eq!(hist.summary().count, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedHistogram(Arc<Mutex<LatencyHistogram>>);

impl SharedHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&self, latency: Duration) {
        self.lock().record(latency);
    }

    /// Records one latency given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.lock().record_ns(ns);
    }

    /// Records many durations under one lock acquisition — what the batch
    /// reply path uses so a 32-row wave costs one lock, not 32.
    pub fn record_all<I: IntoIterator<Item = Duration>>(&self, latencies: I) {
        let mut hist = self.lock();
        for latency in latencies {
            hist.record(latency);
        }
    }

    /// A copyable snapshot of the headline statistics.
    pub fn summary(&self) -> LatencySummary {
        self.lock().summary()
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.lock().count()
    }

    /// A full-fidelity clone of the underlying histogram — what the
    /// windowed time-series layer diffs across snapshots
    /// ([`ff_metrics::LatencyHistogram::diff_since`]).
    pub fn histogram(&self) -> LatencyHistogram {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LatencyHistogram> {
        self.0.lock().expect("shared histogram lock poisoned")
    }
}

/// One registered metric: a shared handle of one of the three kinds.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(SharedHistogram),
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonic event count.
    Counter(u64),
    /// A last-value (or high-water-mark) gauge.
    Gauge(u64),
    /// Headline latency statistics.
    Histogram(LatencySummary),
}

/// The full-fidelity value of one metric at snapshot time — unlike
/// [`MetricValue`], histograms keep their complete bucket vector so two
/// deep snapshots can be *diffed* into a per-interval histogram. This is
/// the substrate of [`crate::WindowedSeries`].
#[derive(Debug, Clone)]
pub enum DeepMetricValue {
    /// A monotonic event count.
    Counter(u64),
    /// A last-value (or high-water-mark) gauge.
    Gauge(u64),
    /// The complete histogram (buckets, count, sum, extremes).
    Histogram(LatencyHistogram),
}

/// A consistent-order snapshot of every registered metric, sorted by name.
///
/// "Atomic" per metric (each value is read once from its shared cell);
/// metrics are not synchronized with *each other*, exactly like reading
/// the underlying counters directly.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// The value registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Renders the snapshot in the stable text exposition format: one
    /// metric per line, sorted by name —
    ///
    /// ```text
    /// <name> counter <value>
    /// <name> gauge <value>
    /// <name> histogram count <n> mean_ns <ns> p50_ns <ns> p95_ns <ns> p99_ns <ns> max_ns <ns>
    /// ```
    ///
    /// The format is part of the wire contract (the `FF8P` `MetricsDump`
    /// reply carries exactly this text): fields are only ever *appended*,
    /// and every value is a base-10 integer, so line-oriented scrapers
    /// stay compatible across releases.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(self.entries.len() * 48);
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => writeln!(out, "{name} counter {v}"),
                MetricValue::Gauge(v) => writeln!(out, "{name} gauge {v}"),
                MetricValue::Histogram(s) => writeln!(
                    out,
                    "{name} histogram count {} mean_ns {} p50_ns {} p95_ns {} p99_ns {} max_ns {}",
                    s.count,
                    s.mean.as_nanos(),
                    s.p50.as_nanos(),
                    s.p95.as_nanos(),
                    s.p99.as_nanos(),
                    s.max.as_nanos()
                ),
            }
            .expect("writing to a String cannot fail");
        }
        out
    }
}

/// A registry of named metric handles. Cheap to clone; clones share one
/// registry. Registration takes a short mutex; the handles themselves are
/// lock-free (counters, gauges) or short-mutex (histograms), so the hot
/// path never touches the registry after startup.
///
/// # Examples
///
/// ```
/// use ff_trace::{MetricValue, MetricsRegistry};
///
/// let metrics = MetricsRegistry::new();
/// let requests = metrics.counter("serve.requests");
/// requests.inc();
/// // A second caller naming the same metric shares the same cell.
/// metrics.counter("serve.requests").inc();
/// assert_eq!(
///     metrics.snapshot().get("serve.requests"),
///     Some(&MetricValue::Counter(2))
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, registering a fresh one on
    /// first use. If `name` is registered as a different kind, the existing
    /// registration wins and a *detached* counter is returned — callers
    /// that can race on kind should pick distinct names.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(counter) => counter.clone(),
            _ => Counter::new(),
        }
    }

    /// The gauge registered under `name` (get-or-register; see
    /// [`MetricsRegistry::counter`] for the kind-mismatch contract).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(gauge) => gauge.clone(),
            _ => Gauge::new(),
        }
    }

    /// The histogram registered under `name` (get-or-register; see
    /// [`MetricsRegistry::counter`] for the kind-mismatch contract).
    pub fn histogram(&self, name: &str) -> SharedHistogram {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(SharedHistogram::new()))
        {
            Metric::Histogram(hist) => hist.clone(),
            _ => SharedHistogram::new(),
        }
    }

    /// Registers an **existing** counter handle under `name`, replacing any
    /// previous registration — how a subsystem that already owns its
    /// counters (the admission gate's shed counts, a model entry's request
    /// count) publishes them without moving its call sites.
    pub fn register_counter(&self, name: &str, counter: Counter) {
        self.lock()
            .insert(name.to_string(), Metric::Counter(counter));
    }

    /// Registers an existing gauge handle under `name` (see
    /// [`MetricsRegistry::register_counter`]).
    pub fn register_gauge(&self, name: &str, gauge: Gauge) {
        self.lock().insert(name.to_string(), Metric::Gauge(gauge));
    }

    /// Registers an existing histogram handle under `name` (see
    /// [`MetricsRegistry::register_counter`]).
    pub fn register_histogram(&self, name: &str, histogram: SharedHistogram) {
        self.lock()
            .insert(name.to_string(), Metric::Histogram(histogram));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A consistent-order snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.lock();
        MetricsSnapshot {
            entries: metrics
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }

    /// [`MetricsRegistry::snapshot`] rendered in the stable text exposition
    /// format ([`MetricsSnapshot::render`]).
    pub fn expose(&self) -> String {
        self.snapshot().render()
    }

    /// A full-fidelity snapshot: `(name, value)` pairs ascending by name,
    /// with histograms cloned whole rather than summarized — so a later
    /// snapshot can be diffed against this one per bucket.
    pub fn deep_snapshot(&self) -> Vec<(String, DeepMetricValue)> {
        let metrics = self.lock();
        metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => DeepMetricValue::Counter(c.get()),
                    Metric::Gauge(g) => DeepMetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => DeepMetricValue::Histogram(h.histogram()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().expect("metrics registry lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_shares_one_cell() {
        let metrics = MetricsRegistry::new();
        metrics.counter("a.requests").add(2);
        metrics.counter("a.requests").inc();
        metrics.gauge("a.depth").set(7);
        metrics.histogram("a.latency_ns").record_ns(1000);
        assert_eq!(metrics.len(), 3);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.get("a.requests"), Some(&MetricValue::Counter(3)));
        assert_eq!(snapshot.get("a.depth"), Some(&MetricValue::Gauge(7)));
        assert!(matches!(
            snapshot.get("a.latency_ns"),
            Some(MetricValue::Histogram(s)) if s.count == 1
        ));
        assert_eq!(snapshot.get("missing"), None);
    }

    #[test]
    fn registering_existing_handles_publishes_them() {
        let metrics = MetricsRegistry::new();
        let owned = Counter::new();
        owned.add(5);
        metrics.register_counter("sub.events", owned.clone());
        owned.inc(); // the original call site keeps bumping its own handle
        assert_eq!(
            metrics.snapshot().get("sub.events"),
            Some(&MetricValue::Counter(6))
        );
        let gauge = Gauge::new();
        gauge.set(3);
        metrics.register_gauge("sub.version", gauge);
        let hist = SharedHistogram::new();
        hist.record(Duration::from_micros(10));
        metrics.register_histogram("sub.latency_ns", hist);
        assert_eq!(metrics.len(), 3);
    }

    #[test]
    fn kind_mismatch_preserves_the_existing_registration() {
        let metrics = MetricsRegistry::new();
        metrics.counter("x").add(4);
        // Asking for the same name as a gauge yields a detached handle and
        // leaves the counter in place.
        let detached = metrics.gauge("x");
        detached.set(99);
        assert_eq!(metrics.snapshot().get("x"), Some(&MetricValue::Counter(4)));
    }

    #[test]
    fn exposition_format_is_stable_and_sorted() {
        let metrics = MetricsRegistry::new();
        metrics.gauge("b.gauge").set(2);
        metrics.counter("a.counter").inc();
        metrics.histogram("c.hist_ns").record_ns(500);
        let text = metrics.expose();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a.counter counter 1");
        assert_eq!(lines[1], "b.gauge gauge 2");
        assert!(lines[2].starts_with("c.hist_ns histogram count 1 mean_ns 500"));
    }

    #[test]
    fn clones_share_one_registry() {
        let metrics = MetricsRegistry::new();
        let clone = metrics.clone();
        clone.counter("shared").inc();
        assert_eq!(
            metrics.snapshot().get("shared"),
            Some(&MetricValue::Counter(1))
        );
    }
}
