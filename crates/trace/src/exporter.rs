//! A plaintext TCP exposition endpoint for a [`MetricsRegistry`].
//!
//! The `FF8P` stats frame answers *clients of the model* — but fleet
//! scrapers and shell operators want the whole registry without speaking
//! the binary protocol. [`MetricsExporter::bind`] opens a second, trivially
//! scrapeable port: every accepted connection receives one fresh
//! [`MetricsRegistry::expose`] rendering and is closed. No request parsing,
//! no framing — `nc host port` (or any HTTP-less poller) gets the current
//! snapshot in the stable text format.
//!
//! The exporter owns one accept thread and serves connections inline on
//! it; exposition is a read-render-write of a few kilobytes, so a serial
//! accept loop is deliberate — it cannot amplify load on a saturated
//! server the way a per-connection thread spawn could.

use crate::MetricsRegistry;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Serves [`MetricsRegistry::expose`] snapshots over plaintext TCP.
///
/// Bind it next to the model server and point any line-oriented poller at
/// the port; shutting down (or dropping) the exporter stops the accept
/// thread. Connections established concurrently with shutdown still get a
/// complete snapshot — the write finishes before the loop re-checks the
/// flag.
///
/// # Examples
///
/// ```
/// use ff_trace::{MetricsExporter, MetricsRegistry};
/// use std::io::Read;
///
/// let metrics = MetricsRegistry::new();
/// metrics.counter("serve.requests").add(41);
/// let mut exporter = MetricsExporter::bind("127.0.0.1:0", metrics.clone()).unwrap();
///
/// metrics.counter("serve.requests").inc(); // snapshots are live
/// let mut scrape = String::new();
/// std::net::TcpStream::connect(exporter.addr())
///     .unwrap()
///     .read_to_string(&mut scrape)
///     .unwrap();
/// assert!(scrape.contains("serve.requests counter 42"));
/// exporter.shutdown();
/// ```
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Binds `addr` and starts serving `registry` snapshots.
    ///
    /// Pass port 0 to bind an ephemeral port and read the real one back
    /// from [`MetricsExporter::addr`]. The registry handle is shared —
    /// metrics recorded after the bind appear in later scrapes.
    pub fn bind(addr: impl ToSocketAddrs, registry: MetricsRegistry) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept = std::thread::Builder::new()
            .name("ff-metrics-export".into())
            .spawn(move || accept_loop(&listener, &registry, &flag))?;
        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and releases the port. Idempotent; also
    /// invoked on drop.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is parked in `accept()`; a throwaway self-connect
        // wakes it so it can observe the flag and exit.
        drop(TcpStream::connect(self.addr));
        if let Some(handle) = self.accept.take() {
            drop(handle.join());
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, registry: &MetricsRegistry, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        let Ok((stream, _peer)) = listener.accept() else {
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        serve_scrape(stream, registry);
    }
}

/// One connection = one snapshot: render, write, half-close, done. Errors
/// are the peer's problem (it hung up mid-scrape); the exporter never dies.
fn serve_scrape(mut stream: TcpStream, registry: &MetricsRegistry) {
    let body = registry.expose();
    if stream.write_all(body.as_bytes()).is_ok() {
        drop(stream.flush());
    }
    drop(stream.shutdown(Shutdown::Write));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn scrape(addr: SocketAddr) -> String {
        let mut text = String::new();
        TcpStream::connect(addr)
            .unwrap()
            .read_to_string(&mut text)
            .unwrap();
        text
    }

    #[test]
    fn each_connection_gets_a_fresh_snapshot() {
        let metrics = MetricsRegistry::new();
        metrics.counter("requests").add(5);
        metrics.gauge("depth").set(2);
        let mut exporter = MetricsExporter::bind("127.0.0.1:0", metrics.clone()).unwrap();

        let first = scrape(exporter.addr());
        assert!(first.contains("requests counter 5"), "got: {first}");
        assert!(first.contains("depth gauge 2"), "got: {first}");

        metrics.counter("requests").add(3);
        let second = scrape(exporter.addr());
        assert!(
            second.contains("requests counter 8"),
            "scrapes must be live, not cached: {second}"
        );
        exporter.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_releases_the_port() {
        let mut exporter = MetricsExporter::bind("127.0.0.1:0", MetricsRegistry::new()).unwrap();
        let addr = exporter.addr();
        exporter.shutdown();
        exporter.shutdown();
        // The port is free again once the accept thread has exited.
        drop(TcpListener::bind(addr).unwrap());
    }
}
