//! A plaintext TCP exposition endpoint for a [`MetricsRegistry`].
//!
//! The `FF8P` stats frame answers *clients of the model* — but fleet
//! scrapers and shell operators want the whole registry without speaking
//! the binary protocol. [`MetricsExporter::bind`] opens a second, trivially
//! scrapeable port: every accepted connection receives one fresh
//! [`MetricsRegistry::expose`] rendering and is closed. No request parsing,
//! no framing — `nc host port` (or any HTTP-less poller) gets the current
//! snapshot in the stable text format.
//!
//! The exporter owns one accept thread and serves connections inline on
//! it; exposition is a read-render-write of a few kilobytes, so a serial
//! accept loop is deliberate — it cannot amplify load on a saturated
//! server the way a per-connection thread spawn could.

use crate::{MetricsRegistry, WindowedSeries};
use ff_metrics::{Counter, Gauge};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// The process-start anchor for `proc.uptime_seconds` — initialized by the
/// first exporter bind, shared by every exporter in the process so the
/// gauge means one thing no matter how many registries are exported.
fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Serves [`MetricsRegistry::expose`] snapshots over plaintext TCP.
///
/// Bind it next to the model server and point any line-oriented poller at
/// the port; shutting down (or dropping) the exporter stops the accept
/// thread. Connections established concurrently with shutdown still get a
/// complete snapshot — the write finishes before the loop re-checks the
/// flag.
///
/// # Examples
///
/// ```
/// use ff_trace::{MetricsExporter, MetricsRegistry};
/// use std::io::Read;
///
/// let metrics = MetricsRegistry::new();
/// metrics.counter("serve.requests").add(41);
/// let mut exporter = MetricsExporter::bind("127.0.0.1:0", metrics.clone()).unwrap();
///
/// metrics.counter("serve.requests").inc(); // snapshots are live
/// let mut scrape = String::new();
/// std::net::TcpStream::connect(exporter.addr())
///     .unwrap()
///     .read_to_string(&mut scrape)
///     .unwrap();
/// assert!(scrape.contains("serve.requests counter 42"));
/// exporter.shutdown();
/// ```
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Binds `addr` and starts serving `registry` snapshots.
    ///
    /// Pass port 0 to bind an ephemeral port and read the real one back
    /// from [`MetricsExporter::addr`]. The registry handle is shared —
    /// metrics recorded after the bind appear in later scrapes.
    ///
    /// The exporter also registers two operational metrics of its own:
    /// a `trace.exporter.scrapes` counter (connections served) and a
    /// `proc.uptime_seconds` gauge stamped from a process-start anchor at
    /// every scrape.
    pub fn bind(addr: impl ToSocketAddrs, registry: MetricsRegistry) -> io::Result<Self> {
        Self::bind_inner(addr, registry, None)
    }

    /// Like [`MetricsExporter::bind`], but every scrape also advances the
    /// given [`WindowedSeries`] ([`WindowedSeries::tick_if_due`]) and
    /// appends its `window_*` lines after the base exposition — so a
    /// periodic scraper sees rates and per-window percentiles without any
    /// background thread existing to compute them.
    ///
    /// The series handle is cloneable; keep one to force ticks or render
    /// independently of the exporter.
    pub fn bind_windowed(
        addr: impl ToSocketAddrs,
        registry: MetricsRegistry,
        series: WindowedSeries,
    ) -> io::Result<Self> {
        Self::bind_inner(addr, registry, Some(series))
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        registry: MetricsRegistry,
        series: Option<WindowedSeries>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let ops = ExporterOps {
            scrapes: registry.counter("trace.exporter.scrapes"),
            uptime: registry.gauge("proc.uptime_seconds"),
            start: process_start(),
        };
        let accept = std::thread::Builder::new()
            .name("ff-metrics-export".into())
            .spawn(move || accept_loop(&listener, &registry, series.as_ref(), &ops, &flag))?;
        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and releases the port. Idempotent; also
    /// invoked on drop.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is parked in `accept()`; a throwaway self-connect
        // wakes it so it can observe the flag and exit.
        drop(TcpStream::connect(self.addr));
        if let Some(handle) = self.accept.take() {
            drop(handle.join());
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The exporter's own operational metrics, stamped on every scrape.
struct ExporterOps {
    scrapes: Counter,
    uptime: Gauge,
    start: Instant,
}

fn accept_loop(
    listener: &TcpListener,
    registry: &MetricsRegistry,
    series: Option<&WindowedSeries>,
    ops: &ExporterOps,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::SeqCst) {
        let Ok((stream, _peer)) = listener.accept() else {
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        ops.scrapes.inc();
        ops.uptime.set(ops.start.elapsed().as_secs());
        serve_scrape(stream, registry, series);
    }
}

/// One connection = one snapshot: render, write, half-close, done. Errors
/// are the peer's problem (it hung up mid-scrape); the exporter never dies.
fn serve_scrape(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    series: Option<&WindowedSeries>,
) {
    let mut body = registry.expose();
    if let Some(series) = series {
        series.tick_if_due();
        body.push_str(&series.render());
    }
    if stream.write_all(body.as_bytes()).is_ok() {
        drop(stream.flush());
    }
    drop(stream.shutdown(Shutdown::Write));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn scrape(addr: SocketAddr) -> String {
        let mut text = String::new();
        TcpStream::connect(addr)
            .unwrap()
            .read_to_string(&mut text)
            .unwrap();
        text
    }

    #[test]
    fn each_connection_gets_a_fresh_snapshot() {
        let metrics = MetricsRegistry::new();
        metrics.counter("requests").add(5);
        metrics.gauge("depth").set(2);
        let mut exporter = MetricsExporter::bind("127.0.0.1:0", metrics.clone()).unwrap();

        let first = scrape(exporter.addr());
        assert!(first.contains("requests counter 5"), "got: {first}");
        assert!(first.contains("depth gauge 2"), "got: {first}");

        metrics.counter("requests").add(3);
        let second = scrape(exporter.addr());
        assert!(
            second.contains("requests counter 8"),
            "scrapes must be live, not cached: {second}"
        );
        exporter.shutdown();
    }

    #[test]
    fn scrapes_counter_and_uptime_gauge_are_registered_and_advance() {
        let metrics = MetricsRegistry::new();
        let mut exporter = MetricsExporter::bind("127.0.0.1:0", metrics.clone()).unwrap();
        let first = scrape(exporter.addr());
        assert!(
            first.contains("trace.exporter.scrapes counter 1"),
            "first scrape counts itself: {first}"
        );
        assert!(first.contains("proc.uptime_seconds gauge"), "got: {first}");
        let second = scrape(exporter.addr());
        assert!(
            second.contains("trace.exporter.scrapes counter 2"),
            "got: {second}"
        );
        exporter.shutdown();
    }

    #[test]
    fn windowed_bind_appends_window_lines_to_scrapes() {
        let metrics = MetricsRegistry::new();
        metrics.counter("reqs").add(7);
        let series = WindowedSeries::new(metrics.clone(), std::time::Duration::from_secs(3600), 4);
        series.tick(); // baseline before any scrape
        metrics.counter("reqs").add(3);
        series.tick(); // one full window
        let mut exporter =
            MetricsExporter::bind_windowed("127.0.0.1:0", metrics.clone(), series).unwrap();
        let body = scrape(exporter.addr());
        assert!(body.contains("reqs counter 10"), "base lines first: {body}");
        assert!(
            body.contains("reqs window_counter delta 3"),
            "window lines appended: {body}"
        );
        exporter.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_releases_the_port() {
        let mut exporter = MetricsExporter::bind("127.0.0.1:0", MetricsRegistry::new()).unwrap();
        let addr = exporter.addr();
        exporter.shutdown();
        exporter.shutdown();
        // The port is free again once the accept thread has exited.
        drop(TcpListener::bind(addr).unwrap());
    }
}
