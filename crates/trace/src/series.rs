//! A windowed time-series view over a [`MetricsRegistry`].
//!
//! Lifetime totals answer "how much, ever" — a scraper watching a long-running
//! trainer or server also wants "how fast, lately": request *rates*, and
//! latency percentiles over the last few minutes rather than since process
//! start. [`WindowedSeries`] keeps a small ring of full-fidelity registry
//! snapshots ([`MetricsRegistry::deep_snapshot`]), one per elapsed window,
//! and renders the **difference** between the newest and oldest retained
//! snapshots:
//!
//! - counters become deltas and integer rates,
//! - gauges become last/min/max over the retained window,
//! - histograms are diffed per bucket
//!   ([`ff_metrics::LatencyHistogram::diff_since`]) so p50/p95/p99 describe
//!   only the samples recorded inside the window.
//!
//! Snapshots are taken lazily — [`WindowedSeries::tick_if_due`] is called
//! from the exporter's scrape path, so an idle process does no background
//! work and owns no threads. Rendered lines use dedicated `window_*` kinds,
//! keeping the base exposition format untouched (append-only contract).

use crate::registry::{DeepMetricValue, MetricsRegistry};
use std::collections::VecDeque;
use std::fmt::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type DeepSnapshot = Vec<(String, DeepMetricValue)>;

struct SeriesInner {
    registry: MetricsRegistry,
    window: Duration,
    windows: usize,
    /// `(taken at, snapshot)`, oldest first; at most `windows + 1` entries
    /// so the newest-vs-oldest diff spans exactly `windows` intervals.
    snaps: VecDeque<(Instant, DeepSnapshot)>,
}

/// A bounded ring of per-window metric snapshots with a rate/percentile
/// rendering. Cheap to clone; clones share one ring.
///
/// # Examples
///
/// ```
/// use ff_trace::{MetricsRegistry, WindowedSeries};
/// use std::time::Duration;
///
/// let metrics = MetricsRegistry::new();
/// let series = WindowedSeries::new(metrics.clone(), Duration::from_secs(10), 6);
/// metrics.counter("serve.requests").add(5);
/// series.tick(); // baseline snapshot
/// metrics.counter("serve.requests").add(20);
/// series.tick(); // window boundary
/// let lines = series.render();
/// assert!(lines.contains("serve.requests window_counter delta 20"));
/// ```
#[derive(Clone)]
pub struct WindowedSeries {
    inner: Arc<Mutex<SeriesInner>>,
}

impl std::fmt::Debug for WindowedSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("WindowedSeries")
            .field("window", &inner.window)
            .field("windows", &inner.windows)
            .field("snapshots", &inner.snaps.len())
            .finish()
    }
}

impl WindowedSeries {
    /// Creates a series over `registry`: one snapshot per elapsed `window`,
    /// diffing across at most `windows` retained intervals (clamped to at
    /// least 1).
    pub fn new(registry: MetricsRegistry, window: Duration, windows: usize) -> Self {
        WindowedSeries {
            inner: Arc::new(Mutex::new(SeriesInner {
                registry,
                window: window.max(Duration::from_millis(1)),
                windows: windows.max(1),
                snaps: VecDeque::new(),
            })),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> Duration {
        self.lock().window
    }

    /// The configured number of retained intervals.
    pub fn windows(&self) -> usize {
        self.lock().windows
    }

    /// Number of snapshots currently retained.
    pub fn snapshots(&self) -> usize {
        self.lock().snaps.len()
    }

    /// Takes a snapshot if none exists yet or the newest one is at least
    /// one window old; returns whether a snapshot was taken. This is the
    /// scrape-path entry point — cost is one registry walk per elapsed
    /// window, nothing in between.
    pub fn tick_if_due(&self) -> bool {
        let mut inner = self.lock();
        let due = match inner.snaps.back() {
            None => true,
            Some((at, _)) => at.elapsed() >= inner.window,
        };
        if due {
            push_snapshot(&mut inner);
        }
        due
    }

    /// Forces a window boundary now, regardless of elapsed time — how
    /// tests (and manual probes) advance the series deterministically.
    pub fn tick(&self) {
        push_snapshot(&mut self.lock());
    }

    /// Renders the newest-vs-oldest diff in the stable text format, one
    /// line per metric present in both snapshots:
    ///
    /// ```text
    /// <name> window_counter delta <n> rate_milli_per_sec <n> span_ms <n> windows <n>
    /// <name> window_gauge last <n> min <n> max <n> windows <n>
    /// <name> window_histogram count <n> p50_ns <n> p95_ns <n> p99_ns <n> span_ms <n> windows <n>
    /// ```
    ///
    /// Like the base exposition format, every value is a base-10 integer
    /// (rates are in thousandths per second) and fields are only ever
    /// appended. Empty until two snapshots exist; metrics registered
    /// mid-flight join once a baseline snapshot contains them.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let (Some((oldest_at, oldest)), Some((newest_at, newest))) =
            (inner.snaps.front(), inner.snaps.back())
        else {
            return String::new();
        };
        if inner.snaps.len() < 2 {
            return String::new();
        }
        let span = newest_at.saturating_duration_since(*oldest_at);
        let span_ms = (span.as_millis().max(1)).min(u128::from(u64::MAX)) as u64;
        let spanned = inner.snaps.len() - 1;
        let mut out = String::with_capacity(newest.len() * 64);
        for (name, value) in newest {
            let Some(base) = lookup(oldest, name) else {
                continue;
            };
            match (value, base) {
                (DeepMetricValue::Counter(now), DeepMetricValue::Counter(then)) => {
                    let delta = now.saturating_sub(*then);
                    let rate = u128::from(delta) * 1_000_000 / u128::from(span_ms);
                    writeln!(
                        out,
                        "{name} window_counter delta {delta} rate_milli_per_sec {rate} \
                         span_ms {span_ms} windows {spanned}"
                    )
                }
                (DeepMetricValue::Gauge(now), DeepMetricValue::Gauge(_)) => {
                    let observed =
                        inner
                            .snaps
                            .iter()
                            .filter_map(|(_, snap)| match lookup(snap, name) {
                                Some(DeepMetricValue::Gauge(v)) => Some(*v),
                                _ => None,
                            });
                    let (mut min, mut max) = (*now, *now);
                    for v in observed {
                        min = min.min(v);
                        max = max.max(v);
                    }
                    writeln!(
                        out,
                        "{name} window_gauge last {now} min {min} max {max} windows {spanned}"
                    )
                }
                (DeepMetricValue::Histogram(now), DeepMetricValue::Histogram(then)) => {
                    let diff = now.diff_since(then);
                    writeln!(
                        out,
                        "{name} window_histogram count {} p50_ns {} p95_ns {} p99_ns {} \
                         span_ms {span_ms} windows {spanned}",
                        diff.count(),
                        diff.p50().as_nanos(),
                        diff.p95().as_nanos(),
                        diff.p99().as_nanos()
                    )
                }
                _ => Ok(()), // kind changed between snapshots: skip
            }
            .expect("writing to a String cannot fail");
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SeriesInner> {
        self.inner.lock().expect("windowed series lock poisoned")
    }
}

fn push_snapshot(inner: &mut SeriesInner) {
    let snapshot = inner.registry.deep_snapshot();
    inner.snaps.push_back((Instant::now(), snapshot));
    while inner.snaps.len() > inner.windows + 1 {
        inner.snaps.pop_front();
    }
}

/// Binary search over a sorted deep snapshot.
fn lookup<'a>(snapshot: &'a DeepSnapshot, name: &str) -> Option<&'a DeepMetricValue> {
    snapshot
        .binary_search_by(|(n, _)| n.as_str().cmp(name))
        .ok()
        .map(|i| &snapshot[i].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_or_single_snapshot_renders_nothing() {
        let metrics = MetricsRegistry::new();
        metrics.counter("c").inc();
        let series = WindowedSeries::new(metrics, Duration::from_secs(60), 4);
        assert_eq!(series.render(), "");
        series.tick();
        assert_eq!(series.render(), "", "one snapshot has no interval yet");
        assert_eq!(series.snapshots(), 1);
    }

    #[test]
    fn counter_deltas_and_rates_cover_only_the_window() {
        let metrics = MetricsRegistry::new();
        metrics.counter("reqs").add(1000); // pre-window history
        let series = WindowedSeries::new(metrics.clone(), Duration::from_secs(60), 4);
        series.tick();
        metrics.counter("reqs").add(30);
        series.tick();
        let lines = series.render();
        assert!(
            lines.contains("reqs window_counter delta 30 rate_milli_per_sec"),
            "lifetime total must not leak into the delta: {lines}"
        );
        assert!(lines.contains("windows 1"), "{lines}");
    }

    #[test]
    fn gauges_report_last_min_max_over_retained_snapshots() {
        let metrics = MetricsRegistry::new();
        let depth = metrics.gauge("depth");
        let series = WindowedSeries::new(metrics, Duration::from_secs(60), 4);
        for v in [5u64, 9, 2, 7] {
            depth.set(v);
            series.tick();
        }
        let lines = series.render();
        assert!(
            lines.contains("depth window_gauge last 7 min 2 max 9 windows 3"),
            "{lines}"
        );
    }

    #[test]
    fn histograms_diff_per_window() {
        let metrics = MetricsRegistry::new();
        let hist = metrics.histogram("lat_ns");
        hist.record_ns(1_000_000_000); // huge pre-window outlier
        let series = WindowedSeries::new(metrics, Duration::from_secs(60), 4);
        series.tick();
        for _ in 0..100 {
            hist.record_ns(1_000);
        }
        series.tick();
        let lines = series.render();
        let line = lines
            .lines()
            .find(|l| l.starts_with("lat_ns window_histogram"))
            .expect("histogram line present");
        assert!(line.contains("count 100"), "{line}");
        let p99: u64 = line
            .split_whitespace()
            .skip_while(|w| *w != "p99_ns")
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            p99 < 10_000,
            "window p99 must exclude the pre-window outlier: {line}"
        );
    }

    #[test]
    fn ring_retains_windows_plus_one_snapshots() {
        let metrics = MetricsRegistry::new();
        let series = WindowedSeries::new(metrics.clone(), Duration::from_secs(60), 2);
        for i in 0..10u64 {
            metrics.counter("c").inc();
            metrics.gauge("g").set(i);
            series.tick();
        }
        assert_eq!(series.snapshots(), 3);
        let lines = series.render();
        // Diff spans the 2 retained intervals: counts 8 → 10.
        assert!(lines.contains("c window_counter delta 2"), "{lines}");
        assert!(
            lines.contains("g window_gauge last 9 min 7 max 9"),
            "{lines}"
        );
    }

    #[test]
    fn tick_if_due_is_lazy() {
        let metrics = MetricsRegistry::new();
        let series = WindowedSeries::new(metrics, Duration::from_secs(3600), 4);
        assert!(series.tick_if_due(), "first call seeds the baseline");
        assert!(!series.tick_if_due(), "window has not elapsed");
        assert_eq!(series.snapshots(), 1);

        let fast = WindowedSeries::new(MetricsRegistry::new(), Duration::from_millis(1), 4);
        fast.tick_if_due();
        std::thread::sleep(Duration::from_millis(5));
        assert!(fast.tick_if_due(), "elapsed window takes a snapshot");
        assert_eq!(fast.snapshots(), 2);
    }

    #[test]
    fn metric_registered_mid_flight_joins_after_a_baseline() {
        let metrics = MetricsRegistry::new();
        let series = WindowedSeries::new(metrics.clone(), Duration::from_secs(60), 4);
        series.tick();
        metrics.counter("late").add(4);
        series.tick();
        assert!(
            !series.render().contains("late"),
            "no baseline for the new metric yet"
        );
        series.tick();
        // Still absent: the oldest retained snapshot predates the metric.
        // It appears once the pre-registration snapshot ages out.
        for _ in 0..4 {
            series.tick();
        }
        assert!(series.render().contains("late window_counter"), "joined");
    }
}
