//! Cluster-step spans: the distributed-training counterpart of the
//! per-request [`crate::FlightRecorder`].
//!
//! The data-parallel coordinator drives every training step through the
//! same phases — prepare/quantize, param-sync broadcast, shard dispatch,
//! wire wait, reduce (with local recompute for dead workers' shards),
//! apply — and each remote shard additionally spends worker-side time in
//! decode/compute/encode. A [`ClusterSpan`] records all of it as
//! nanosecond offsets: coordinator stamps on the coordinator's clock
//! (offsets from step start), worker stamps on each worker's clock
//! (offsets from task receipt), so no cross-host clock sync is needed and
//! every sequence is monotonic by construction.
//!
//! Sampling reuses the recorder's seeded splitmix64 decision, keyed on the
//! **step number**: [`ClusterFlightRecorder::trace_id`] returns `0` for
//! unsampled steps and a deterministic nonzero id otherwise — the id that
//! rides on `SubmitBatch`/`ShardResult` frames so workers know which
//! results to stamp. Committed spans land in a bounded ring with the same
//! `try_lock`, never-block-the-trainer commit discipline as the serving
//! recorder.

use crate::recorder::splitmix64;
use crate::{Sampler, TraceSettings};
use ff_metrics::Counter;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One shard's timeline within a [`ClusterSpan`].
///
/// `dispatched_ns`/`completed_ns` are coordinator-clock offsets from step
/// start; `decoded_ns`/`computed_ns`/`encoded_ns` are worker-clock offsets
/// from the moment the worker received the task bytes (zero for local
/// shards and for workers speaking a pre-trace protocol version).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardSpan {
    /// Index of the shard within the step's task list.
    pub shard_index: u64,
    /// Worker that produced the gradients, `None` when the coordinator
    /// recomputed the shard locally (never dispatched, or owner died).
    pub worker_id: Option<u64>,
    /// When the task was written to the worker's socket (coordinator
    /// clock); zero for shards that were never dispatched.
    pub dispatched_ns: u64,
    /// When the gradients became available to the reducer (coordinator
    /// clock) — result received for remote shards, recompute finished for
    /// local ones.
    pub completed_ns: u64,
    /// Worker-side: task bytes decoded (worker clock).
    pub decoded_ns: u64,
    /// Worker-side: shard gradients computed (worker clock).
    pub computed_ns: u64,
    /// Worker-side: result frame encoded, ready to write (worker clock).
    pub encoded_ns: u64,
}

impl ShardSpan {
    /// `true` when the worker-clock stamps form a non-decreasing sequence
    /// and the coordinator saw dispatch before completion.
    pub fn is_monotonic(&self) -> bool {
        self.dispatched_ns <= self.completed_ns
            && self.decoded_ns <= self.computed_ns
            && self.computed_ns <= self.encoded_ns
    }

    /// `true` when a remote worker stamped all three of its offsets.
    pub fn has_worker_stamps(&self) -> bool {
        self.decoded_ns > 0 && self.computed_ns > 0 && self.encoded_ns > 0
    }
}

/// One training step's full timeline across the cluster.
///
/// All `*_done_ns` fields are coordinator-clock offsets from step start,
/// stamped in phase order; [`ClusterSpan::is_monotonic`] asserts the
/// ordering, [`ClusterSpan::is_complete`] that nothing was skipped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterSpan {
    /// The global step number the span covers.
    pub step: u64,
    /// Deterministic nonzero sampling id (`0` never occurs in a committed
    /// span — unsampled steps produce no span at all).
    pub trace_id: u64,
    /// Batch prepared and quantized, shard tasks built.
    pub prepare_done_ns: u64,
    /// `ParamSync` encoded and written to every live worker.
    pub sync_done_ns: u64,
    /// Every dispatchable shard task written to its worker.
    pub dispatch_done_ns: u64,
    /// All remote results received (or their owners declared dead) — the
    /// wire-wait phase ends here.
    pub collect_done_ns: u64,
    /// Gradients reduced in fixed shard order, including any local
    /// recompute of undelivered shards.
    pub reduce_done_ns: u64,
    /// Optimizer update applied; the step is over.
    pub apply_done_ns: u64,
    /// Per-shard timelines, indexed by shard.
    pub shards: Vec<ShardSpan>,
}

impl ClusterSpan {
    /// Number of shards whose gradients came over the wire.
    pub fn remote_count(&self) -> usize {
        self.shards.iter().filter(|s| s.worker_id.is_some()).count()
    }

    /// Number of shards the coordinator computed locally.
    pub fn local_count(&self) -> usize {
        self.shards.len() - self.remote_count()
    }

    /// `true` when the coordinator phases are in non-decreasing order and
    /// every shard's own timeline is monotonic and finishes by the end of
    /// the reduce phase.
    pub fn is_monotonic(&self) -> bool {
        let phases = [
            self.prepare_done_ns,
            self.sync_done_ns,
            self.dispatch_done_ns,
            self.collect_done_ns,
            self.reduce_done_ns,
            self.apply_done_ns,
        ];
        phases.windows(2).all(|w| w[0] <= w[1])
            && self
                .shards
                .iter()
                .all(|s| s.is_monotonic() && s.completed_ns <= self.reduce_done_ns)
    }

    /// `true` when every coordinator phase was stamped and every shard
    /// reached completion — no phase skipped, no shard lost.
    pub fn is_complete(&self) -> bool {
        self.trace_id != 0
            && self.prepare_done_ns > 0
            && self.sync_done_ns > 0
            && self.dispatch_done_ns > 0
            && self.collect_done_ns > 0
            && self.reduce_done_ns > 0
            && self.apply_done_ns > 0
            && !self.shards.is_empty()
            && self.shards.iter().all(|s| s.completed_ns > 0)
    }

    /// `true` when every remote shard carries all three worker-side stamps
    /// (a shard computed by a pre-trace-version worker reports zeros).
    pub fn has_worker_stamps(&self) -> bool {
        self.shards
            .iter()
            .filter(|s| s.worker_id.is_some())
            .all(ShardSpan::has_worker_stamps)
    }
}

struct ClusterInner {
    settings: TraceSettings,
    sampler: Sampler,
    ring: Mutex<VecDeque<ClusterSpan>>,
    dropped: Counter,
}

/// The bounded ring of committed [`ClusterSpan`]s.
///
/// Cheap to clone (an [`Arc`]); all clones share one ring. The trainer's
/// commit path uses `try_lock` — a reader dumping the ring over the wire
/// can never stall a training step; contended commits are counted in
/// [`ClusterFlightRecorder::dropped`] instead.
#[derive(Clone)]
pub struct ClusterFlightRecorder {
    inner: Arc<ClusterInner>,
}

impl std::fmt::Debug for ClusterFlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterFlightRecorder")
            .field("settings", &self.inner.settings)
            .field("len", &self.len())
            .finish()
    }
}

impl ClusterFlightRecorder {
    /// Creates a recorder with the given settings.
    pub fn new(settings: TraceSettings) -> Self {
        ClusterFlightRecorder {
            inner: Arc::new(ClusterInner {
                sampler: Sampler::new(&settings),
                settings,
                ring: Mutex::new(VecDeque::new()),
                dropped: Counter::new(),
            }),
        }
    }

    /// The settings the recorder was built with.
    pub fn settings(&self) -> TraceSettings {
        self.inner.settings
    }

    /// The sampling decision for `step`, folded into the id that rides the
    /// wire: `0` when the step is not traced, otherwise a deterministic
    /// nonzero id (`splitmix64(seed ^ step) | 1`). With
    /// `sample_per_sec == u32::MAX` the sequence is a pure function of
    /// `(seed, step)` — replayable in tests.
    pub fn trace_id(&self, step: u64) -> u64 {
        if !self.inner.settings.enabled || !self.inner.sampler.admit(step) {
            return 0;
        }
        splitmix64(self.inner.settings.seed ^ step) | 1
    }

    /// Commits a finished span into the ring, evicting oldest-first.
    /// Never blocks: a contended (or zero-capacity) commit is counted in
    /// [`ClusterFlightRecorder::dropped`] and discarded.
    pub fn commit(&self, span: ClusterSpan) {
        match self.inner.ring.try_lock() {
            Ok(mut ring) => {
                if self.inner.settings.capacity == 0 {
                    self.inner.dropped.inc();
                    return;
                }
                while ring.len() >= self.inner.settings.capacity {
                    ring.pop_front();
                }
                ring.push_back(span);
            }
            Err(_) => self.inner.dropped.inc(),
        }
    }

    /// The most recent `max` committed spans in commit order; `0` returns
    /// everything in the ring.
    pub fn recent(&self, max: usize) -> Vec<ClusterSpan> {
        let ring = self.lock_ring();
        let take = if max == 0 {
            ring.len()
        } else {
            max.min(ring.len())
        };
        ring.iter().skip(ring.len() - take).cloned().collect()
    }

    /// Number of committed spans currently in the ring.
    pub fn len(&self) -> usize {
        self.lock_ring().len()
    }

    /// `true` when the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.lock_ring().is_empty()
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.settings.capacity
    }

    /// Spans lost to ring contention or a zero-capacity ring.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// The shared counter behind [`ClusterFlightRecorder::dropped`], for
    /// registration in a [`crate::MetricsRegistry`].
    pub fn dropped_counter(&self) -> Counter {
        self.inner.dropped.clone()
    }

    fn lock_ring(&self) -> std::sync::MutexGuard<'_, VecDeque<ClusterSpan>> {
        self.inner
            .ring
            .lock()
            .expect("cluster recorder ring lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture_all() -> TraceSettings {
        TraceSettings {
            sample_per_sec: u32::MAX,
            ..TraceSettings::default()
        }
    }

    fn sample_span(step: u64, trace_id: u64) -> ClusterSpan {
        ClusterSpan {
            step,
            trace_id,
            prepare_done_ns: 10,
            sync_done_ns: 20,
            dispatch_done_ns: 30,
            collect_done_ns: 50,
            reduce_done_ns: 60,
            apply_done_ns: 70,
            shards: vec![
                ShardSpan {
                    shard_index: 0,
                    worker_id: Some(0),
                    dispatched_ns: 25,
                    completed_ns: 45,
                    decoded_ns: 3,
                    computed_ns: 12,
                    encoded_ns: 14,
                },
                ShardSpan {
                    shard_index: 1,
                    worker_id: None,
                    dispatched_ns: 0,
                    completed_ns: 58,
                    decoded_ns: 0,
                    computed_ns: 0,
                    encoded_ns: 0,
                },
            ],
        }
    }

    #[test]
    fn disabled_recorder_never_samples() {
        let recorder = ClusterFlightRecorder::new(TraceSettings::disabled());
        for step in 0..100 {
            assert_eq!(recorder.trace_id(step), 0);
        }
        let off = ClusterFlightRecorder::new(TraceSettings {
            sample_per_sec: 0,
            ..TraceSettings::default()
        });
        assert_eq!(off.trace_id(7), 0);
    }

    #[test]
    fn trace_ids_are_deterministic_and_nonzero() {
        let settings = TraceSettings {
            seed: 0xFEED,
            ..capture_all()
        };
        let a = ClusterFlightRecorder::new(settings);
        let b = ClusterFlightRecorder::new(settings);
        for step in 0..50 {
            let id = a.trace_id(step);
            assert_ne!(id, 0, "sampled steps always get a nonzero id");
            assert_eq!(id, b.trace_id(step), "same seed, same ids");
        }
        let other_seed = ClusterFlightRecorder::new(TraceSettings {
            seed: 0xBEEF,
            ..capture_all()
        });
        assert_ne!(other_seed.trace_id(0), a.trace_id(0));
    }

    #[test]
    fn stride_thins_steps_deterministically() {
        let recorder = ClusterFlightRecorder::new(TraceSettings {
            sample_stride: 4,
            ..capture_all()
        });
        let sampled: Vec<u64> = (0..200).filter(|&s| recorder.trace_id(s) != 0).collect();
        assert!(!sampled.is_empty() && sampled.len() < 200, "stride thins");
        let sampler = Sampler::new(&recorder.settings());
        for step in 0..200u64 {
            assert_eq!(sampled.contains(&step), sampler.stride_admits(step));
        }
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let recorder = ClusterFlightRecorder::new(TraceSettings {
            capacity: 3,
            ..capture_all()
        });
        for step in 0..8u64 {
            recorder.commit(sample_span(step, recorder.trace_id(step)));
        }
        let recent = recorder.recent(0);
        assert_eq!(recent.len(), 3);
        let steps: Vec<u64> = recent.iter().map(|s| s.step).collect();
        assert_eq!(steps, [5, 6, 7]);
        assert_eq!(recorder.recent(2)[0].step, 6);
        assert_eq!(recorder.dropped(), 0);
    }

    #[test]
    fn commit_survives_a_reader_holding_the_ring() {
        let recorder = ClusterFlightRecorder::new(capture_all());
        let guard = recorder.inner.ring.lock().unwrap();
        recorder.commit(sample_span(0, 1));
        drop(guard);
        assert_eq!(recorder.dropped(), 1);
        assert!(recorder.is_empty());
    }

    #[test]
    fn monotonic_and_complete_helpers() {
        let span = sample_span(3, 9);
        assert!(span.is_monotonic());
        assert!(span.is_complete());
        assert!(span.has_worker_stamps());
        assert_eq!(span.remote_count(), 1);
        assert_eq!(span.local_count(), 1);

        let mut regressed = span.clone();
        regressed.collect_done_ns = regressed.dispatch_done_ns - 1;
        assert!(!regressed.is_monotonic());

        let mut late_shard = span.clone();
        late_shard.shards[0].completed_ns = late_shard.reduce_done_ns + 1;
        assert!(!late_shard.is_monotonic());

        let mut skipped = span.clone();
        skipped.sync_done_ns = 0;
        assert!(!skipped.is_complete());

        let mut unstamped = span;
        unstamped.shards[0].decoded_ns = 0;
        assert!(!unstamped.has_worker_stamps());
    }
}
