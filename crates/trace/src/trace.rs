//! Per-request stage traces: the live, concurrently stamped cell
//! ([`TraceHandle`]) and the immutable committed record
//! ([`RequestTrace`]).
//!
//! A trace is born at receive time, cloned along the request's journey
//! (net handler → batcher queue → GEMM worker → reply writer), stamped at
//! each [`Stage`], and commits to the [`crate::FlightRecorder`]'s ring
//! when the **last** handle drops — so a request abandoned anywhere on the
//! path (connection killed, reply channel dropped, worker panic unwound)
//! still commits an incomplete, inspectable record instead of leaking.

use crate::recorder::RecorderInner;
use crate::{Stage, STAGE_COUNT};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel in a stamp slot meaning "not stamped".
pub(crate) const UNSTAMPED: u64 = u64::MAX;

/// Sentinel in the deadline slot meaning "no deadline".
pub(crate) const NO_DEADLINE: i64 = i64::MIN;

/// Configuration for the [`crate::FlightRecorder`] and its sampler.
/// `Copy`, so it embeds directly in serve/net config structs.
///
/// Defaults: tracing enabled, a 256-entry ring, 32 sampled requests per
/// second, stride 1, seed 0, no slow threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSettings {
    /// Master switch. `false` makes `begin` return `None` unconditionally:
    /// zero per-request allocation, zero stamping.
    pub enabled: bool,
    /// Ring capacity in committed traces; the memory bound. Oldest entries
    /// are evicted first. Zero keeps the ring empty (commits are dropped).
    pub capacity: usize,
    /// Sampling budget per wall-clock second. `0` disables sampling
    /// entirely (only slow-threshold capture remains, if armed);
    /// `u32::MAX` bypasses the per-second token bucket so the stride
    /// decision alone — fully deterministic — picks samples.
    pub sample_per_sec: u32,
    /// Deterministic pre-filter: of the requests the bucket would admit,
    /// sample those whose seeded hash of the sequence number falls in
    /// `1/stride` of the space. `0` is treated as `1` (every request
    /// eligible).
    pub sample_stride: u64,
    /// Seed for the deterministic stride hash — same seed and sequence
    /// numbers, same sampling decisions.
    pub seed: u64,
    /// Requests whose end-to-end latency reaches this threshold are
    /// retained and flagged `slow` even when not sampled — the
    /// slow-request log.
    pub slow_threshold: Option<Duration>,
}

impl Default for TraceSettings {
    fn default() -> Self {
        TraceSettings {
            enabled: true,
            capacity: 256,
            sample_per_sec: 32,
            sample_stride: 1,
            seed: 0,
            slow_threshold: None,
        }
    }
}

impl TraceSettings {
    /// Settings with tracing fully off — what latency-critical benchmarks
    /// use to measure the zero-instrumentation baseline.
    pub fn disabled() -> Self {
        TraceSettings {
            enabled: false,
            ..TraceSettings::default()
        }
    }
}

/// The live, shared trace cell. Stamps are `u64` nanoseconds since the
/// trace began, written with a first-wins compare-exchange: re-stamping a
/// stage (a request spanning several waves, a retried write) keeps the
/// *first* timestamp, so committed stamps are monotonic by construction.
pub(crate) struct TraceCell {
    pub(crate) seq: u64,
    pub(crate) model_id: u16,
    pub(crate) sampled: bool,
    pub(crate) start: Instant,
    pub(crate) stamps: [AtomicU64; STAGE_COUNT],
    pub(crate) deadline_remaining_micros: AtomicI64,
    pub(crate) recorder: Arc<RecorderInner>,
}

impl TraceCell {
    pub(crate) fn new(
        seq: u64,
        model_id: u16,
        sampled: bool,
        recorder: Arc<RecorderInner>,
    ) -> Self {
        TraceCell {
            seq,
            model_id,
            sampled,
            start: Instant::now(),
            stamps: [(); STAGE_COUNT].map(|()| AtomicU64::new(UNSTAMPED)),
            deadline_remaining_micros: AtomicI64::new(NO_DEADLINE),
            recorder,
        }
    }

    fn snapshot(&self, end_to_end: Duration, slow: bool) -> RequestTrace {
        let stamps = self.stamps.each_ref().map(|slot| {
            let ns = slot.load(Ordering::Acquire);
            (ns != UNSTAMPED).then_some(ns)
        });
        let deadline = self.deadline_remaining_micros.load(Ordering::Acquire);
        RequestTrace {
            seq: self.seq,
            model_id: self.model_id,
            sampled: self.sampled,
            slow,
            completed: stamps.iter().all(Option::is_some),
            end_to_end_ns: end_to_end.as_nanos().min(u64::MAX as u128) as u64,
            deadline_remaining_micros: (deadline != NO_DEADLINE).then_some(deadline),
            stamps,
        }
    }
}

impl Drop for TraceCell {
    fn drop(&mut self) {
        let end_to_end = self.start.elapsed();
        let slow = self
            .recorder
            .settings
            .slow_threshold
            .is_some_and(|t| end_to_end >= t);
        if self.sampled || slow {
            let trace = self.snapshot(end_to_end, slow);
            self.recorder.commit(trace);
        }
        self.recorder.live.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A cloneable handle to one in-flight request's trace.
///
/// Clones share the cell; any holder may stamp any stage from any thread.
/// The trace commits to the flight recorder when the last handle drops.
#[derive(Clone)]
pub struct TraceHandle {
    pub(crate) cell: Arc<TraceCell>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("seq", &self.cell.seq)
            .field("model_id", &self.cell.model_id)
            .field("sampled", &self.cell.sampled)
            .finish()
    }
}

impl TraceHandle {
    /// Stamps `stage` with "now". First write wins; re-stamping is a no-op.
    pub fn stamp(&self, stage: Stage) {
        self.stamp_at(stage, Instant::now());
    }

    /// Stamps `stage` with a caller-captured instant — what the batch
    /// engine uses to stamp a whole wave with one clock read. Instants
    /// before the trace began clamp to zero.
    pub fn stamp_at(&self, stage: Stage, instant: Instant) {
        let ns = instant
            .saturating_duration_since(self.cell.start)
            .as_nanos()
            .min(u64::MAX as u128 - 1) as u64;
        // First-wins: keeps the earliest observation so stamps stay
        // monotonic even if a stage is revisited.
        let _ = self.cell.stamps[stage.index()].compare_exchange(
            UNSTAMPED,
            ns,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    /// Records the time remaining to the request's deadline at admission
    /// (negative means already past due). First write wins is *not* needed
    /// here — admission happens once — so this is a plain store.
    pub fn set_deadline_remaining(&self, remaining: Duration, past_due: bool) {
        let micros = remaining.as_micros().min(i64::MAX as u128) as i64;
        let signed = if past_due { -micros } else { micros };
        self.cell
            .deadline_remaining_micros
            .store(signed.max(NO_DEADLINE + 1), Ordering::Release);
    }

    /// The sequence number the recorder assigned this request.
    pub fn seq(&self) -> u64 {
        self.cell.seq
    }

    /// The model the request targets.
    pub fn model_id(&self) -> u16 {
        self.cell.model_id
    }

    /// Whether the deterministic sampler selected this request (slow-only
    /// captures return `false`).
    pub fn sampled(&self) -> bool {
        self.cell.sampled
    }
}

/// One committed trace: an immutable record of where a request's time
/// went, read back via [`crate::FlightRecorder::recent`] or the FF8P
/// `TraceDump` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Recorder-assigned sequence number (monotonic per recorder).
    pub seq: u64,
    /// Model the request targeted.
    pub model_id: u16,
    /// Selected by the deterministic sampler.
    pub sampled: bool,
    /// End-to-end latency reached the configured slow threshold.
    pub slow: bool,
    /// All six stages were stamped — `false` means the request was
    /// abandoned mid-path (shed, failed, connection killed).
    pub completed: bool,
    /// Total lifetime of the trace in nanoseconds (begin → last handle
    /// dropped).
    pub end_to_end_ns: u64,
    /// Time remaining to the deadline at admission, in microseconds;
    /// negative means admitted past due; `None` means no deadline (or the
    /// request never reached admission).
    pub deadline_remaining_micros: Option<i64>,
    /// Nanoseconds since [`Stage::Recv`]'s clock start for each stage, in
    /// [`Stage::ALL`] order; `None` means the stage was never reached.
    pub stamps: [Option<u64>; STAGE_COUNT],
}

impl RequestTrace {
    /// The stamp for `stage`, if present.
    pub fn stamp(&self, stage: Stage) -> Option<u64> {
        self.stamps[stage.index()]
    }

    /// `true` when the stamps that *are* present never decrease in path
    /// order. Committed traces always satisfy this (first-wins stamping),
    /// so the wire test suite asserts it on every dumped trace.
    pub fn is_monotonic(&self) -> bool {
        let mut last = 0u64;
        for stamp in self.stamps.iter().flatten() {
            if *stamp < last {
                return false;
            }
            last = *stamp;
        }
        true
    }

    /// Nanoseconds from receive to reply written, when both ends were
    /// stamped — the stage-attributed end-to-end time, which differs from
    /// [`RequestTrace::end_to_end_ns`] only by handle-drop scheduling
    /// noise.
    pub fn reply_latency_ns(&self) -> Option<u64> {
        match (self.stamp(Stage::Recv), self.stamp(Stage::ReplyWritten)) {
            (Some(recv), Some(written)) => Some(written.saturating_sub(recv)),
            _ => None,
        }
    }

    /// The duration between two stamped stages, `None` if either is
    /// missing.
    pub fn span_ns(&self, from: Stage, to: Stage) -> Option<u64> {
        match (self.stamp(from), self.stamp(to)) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlightRecorder;

    fn every_request() -> TraceSettings {
        TraceSettings {
            sample_per_sec: u32::MAX,
            ..TraceSettings::default()
        }
    }

    #[test]
    fn first_wins_stamping_keeps_the_earliest_timestamp() {
        let recorder = FlightRecorder::new(every_request());
        let trace = recorder.begin(3).expect("sampled");
        let early = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        trace.stamp_at(Stage::Admit, early);
        trace.stamp(Stage::Admit); // later; must lose
        for stage in [
            Stage::Enqueue,
            Stage::WaveStart,
            Stage::GemmDone,
            Stage::ReplyWritten,
        ] {
            trace.stamp(stage);
        }
        drop(trace);
        let committed = &recorder.recent(0)[0];
        assert!(committed.completed);
        assert!(committed.is_monotonic());
        assert_eq!(committed.model_id, 3);
        let admit = committed.stamp(Stage::Admit).unwrap();
        let enqueue = committed.stamp(Stage::Enqueue).unwrap();
        assert!(
            admit < enqueue,
            "early stamp must win: {admit} vs {enqueue}"
        );
    }

    #[test]
    fn abandoned_traces_commit_incomplete() {
        let recorder = FlightRecorder::new(every_request());
        let trace = recorder.begin(1).expect("sampled");
        trace.stamp(Stage::Admit);
        let clone = trace.clone();
        drop(trace);
        assert_eq!(recorder.len(), 0, "commit waits for the last handle");
        drop(clone);
        let committed = &recorder.recent(0)[0];
        assert!(!committed.completed);
        assert!(committed.is_monotonic());
        assert_eq!(committed.stamp(Stage::Recv), Some(0));
        assert_eq!(committed.stamp(Stage::Enqueue), None);
        assert_eq!(recorder.live(), 0);
    }

    #[test]
    fn deadline_remaining_survives_commit() {
        let recorder = FlightRecorder::new(every_request());
        let trace = recorder.begin(0).expect("sampled");
        trace.set_deadline_remaining(Duration::from_micros(1500), false);
        drop(trace);
        let committed = &recorder.recent(0)[0];
        assert_eq!(committed.deadline_remaining_micros, Some(1500));

        let trace = recorder.begin(0).expect("sampled");
        trace.set_deadline_remaining(Duration::from_micros(40), true);
        drop(trace);
        let committed = &recorder.recent(0)[1];
        assert_eq!(committed.deadline_remaining_micros, Some(-40));
    }

    #[test]
    fn span_helpers_handle_missing_stamps() {
        let trace = RequestTrace {
            seq: 0,
            model_id: 0,
            sampled: true,
            slow: false,
            completed: false,
            end_to_end_ns: 500,
            deadline_remaining_micros: None,
            stamps: [Some(0), Some(100), None, None, None, Some(400)],
        };
        assert!(trace.is_monotonic());
        assert_eq!(trace.reply_latency_ns(), Some(400));
        assert_eq!(trace.span_ns(Stage::Recv, Stage::Admit), Some(100));
        assert_eq!(trace.span_ns(Stage::Admit, Stage::WaveStart), None);
        let broken = RequestTrace {
            stamps: [Some(0), Some(200), Some(100), None, None, None],
            ..trace
        };
        assert!(!broken.is_monotonic());
    }
}
