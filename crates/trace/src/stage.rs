//! The stage taxonomy of the serving path and the always-on per-stage
//! histograms.
//!
//! A request moves through six observable points: socket receive, auth +
//! admission, micro-batch enqueue, GEMM wave start, GEMM done, reply
//! written. The four intervals between the last four points — queue wait,
//! batch assembly, GEMM, reply write — are where latency hides near
//! saturation, so [`StageHistograms`] records each of them for **every**
//! served request (not just sampled ones) into shared log-linear
//! histograms.

use crate::SharedHistogram;
use ff_metrics::LatencySummary;
use std::time::Duration;

/// Number of stamped points on the request path (the length of
/// [`crate::RequestTrace::stamps`]).
pub const STAGE_COUNT: usize = 6;

/// An observable point on the serving path, in path order.
///
/// Stage *timestamps* are stamped at these points; stage *durations* are
/// the intervals between consecutive points (queue wait is
/// `WaveStart − Enqueue` less assembly, and so on — see
/// [`StageHistograms`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Request bytes fully received (or, in-process, the submit call).
    Recv = 0,
    /// Authentication and admission-gate decision made.
    Admit = 1,
    /// Request handed to the micro-batcher queue.
    Enqueue = 2,
    /// A worker picked the request into a GEMM wave.
    WaveStart = 3,
    /// The wave's GEMM (and activation walk) finished.
    GemmDone = 4,
    /// The reply left the socket (or, in-process, was delivered).
    ReplyWritten = 5,
}

impl Stage {
    /// Every stage in path order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Recv,
        Stage::Admit,
        Stage::Enqueue,
        Stage::WaveStart,
        Stage::GemmDone,
        Stage::ReplyWritten,
    ];

    /// The stage's index into [`crate::RequestTrace::stamps`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short stable name used in tables and the exposition format.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Recv => "recv",
            Stage::Admit => "admit",
            Stage::Enqueue => "enqueue",
            Stage::WaveStart => "wave_start",
            Stage::GemmDone => "gemm_done",
            Stage::ReplyWritten => "reply_written",
        }
    }
}

/// Always-on shared histograms for the four stage durations. Cloneable;
/// clones share the same histograms.
///
/// The batch engine records `queue`, `assembly` and `gemm` once per wave
/// (one lock acquisition per histogram for the whole wave); the reply
/// writer records `write` per reply. All durations are wall-clock
/// (monotonic-clock) nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct StageHistograms {
    /// Enqueue → wave assembly began: time spent waiting in the
    /// micro-batcher queue, including any deliberate `max_wait` hold.
    pub queue: SharedHistogram,
    /// Assembly began → GEMM wave start: validation, model grouping and
    /// input flattening.
    pub assembly: SharedHistogram,
    /// Wave start → GEMM done: the INT8 GEMM plus the layer walk.
    pub gemm: SharedHistogram,
    /// Reply ready at the writer → bytes on the socket.
    pub write: SharedHistogram,
}

impl StageHistograms {
    /// Creates four empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copyable summaries of all four stages.
    pub fn summaries(&self) -> StageSummaries {
        StageSummaries {
            queue: self.queue.summary(),
            assembly: self.assembly.summary(),
            gemm: self.gemm.summary(),
            write: self.write.summary(),
        }
    }
}

/// Copyable headline statistics for the four stage durations — the form
/// that travels inside `ServerStats` and the FF8P stats reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSummaries {
    /// Queue-wait summary.
    pub queue: LatencySummary,
    /// Batch-assembly summary.
    pub assembly: LatencySummary,
    /// GEMM summary.
    pub gemm: LatencySummary,
    /// Reply-write summary.
    pub write: LatencySummary,
}

fn zero_summary() -> LatencySummary {
    LatencySummary {
        count: 0,
        mean: Duration::ZERO,
        p50: Duration::ZERO,
        p95: Duration::ZERO,
        p99: Duration::ZERO,
        max: Duration::ZERO,
    }
}

impl Default for StageSummaries {
    fn default() -> Self {
        StageSummaries {
            queue: zero_summary(),
            assembly: zero_summary(),
            gemm: zero_summary(),
            write: zero_summary(),
        }
    }
}

impl StageSummaries {
    /// `(short name, summary)` for each stage duration, in path order —
    /// convenient for building tables.
    pub fn named(&self) -> [(&'static str, LatencySummary); 4] {
        [
            ("queue", self.queue),
            ("assembly", self.assembly),
            ("gemm", self.gemm),
            ("write", self.write),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_match_path_order() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert_eq!(Stage::ALL.len(), STAGE_COUNT);
        assert_eq!(Stage::ReplyWritten.name(), "reply_written");
    }

    #[test]
    fn histograms_are_shared_across_clones() {
        let stages = StageHistograms::new();
        let writer = stages.clone();
        writer.queue.record(Duration::from_micros(100));
        writer
            .gemm
            .record_all([Duration::from_micros(50), Duration::from_micros(60)]);
        let summaries = stages.summaries();
        assert_eq!(summaries.queue.count, 1);
        assert_eq!(summaries.gemm.count, 2);
        assert_eq!(summaries.assembly.count, 0);
        assert_eq!(summaries.write, StageSummaries::default().write);
    }

    #[test]
    fn named_summaries_follow_path_order() {
        let names: Vec<&str> = StageSummaries::default()
            .named()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(names, ["queue", "assembly", "gemm", "write"]);
    }
}
