//! # ff-edge
//!
//! An analytic model of the NVIDIA Jetson Orin Nano board (paper Table III)
//! used to estimate training time, energy consumption and memory footprint
//! for each training algorithm without the physical hardware.
//!
//! The paper measures these quantities with hardware counters on the real
//! board; this crate derives them from exact per-layer operation counts
//! (driven by the [`ff_models::ModelSpec`] architecture descriptions) plus an
//! explicit device model. Absolute numbers therefore differ from the paper,
//! but the *relative* ordering of algorithms — which the paper's conclusions
//! rest on — is produced by the same mechanisms the paper cites: INT8
//! arithmetic throughput, the absence of the backward gradient chain in
//! Forward-Forward training, and the memory retained for backpropagation's
//! computational graph.
//!
//! # Examples
//!
//! ```
//! use ff_edge::{AlgorithmKind, CostModel, TrainingRun};
//! use ff_models::specs;
//!
//! let model = CostModel::jetson_orin_nano();
//! let spec = specs::mlp_spec(&[1000, 1000]);
//! let run = TrainingRun { batch_size: 32, batches_per_epoch: 100, epochs: 10 };
//! let ff = model.estimate(AlgorithmKind::FfInt8, &spec, &run);
//! let bp = model.estimate(AlgorithmKind::BpFp32, &spec, &run);
//! assert!(ff.memory_bytes < bp.memory_bytes);
//! assert!(ff.time_s < bp.time_s);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod device;
mod opcount;

pub use cost::{AlgorithmKind, CostModel, TrainingCost, TrainingRun};
pub use device::DeviceSpec;
pub use opcount::OpCounts;
