//! Time, energy and memory estimation for a full training run.

use crate::device::DeviceSpec;
use crate::opcount::{bp_fp32_batch_ops, bp_int8_batch_ops, ff_int8_batch_ops, OpCounts};
use ff_models::ModelSpec;
use serde::{Deserialize, Serialize};

/// The training algorithms the cost model can account for (the Table V
/// lineup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// FP32 backpropagation.
    BpFp32,
    /// Backpropagation with directly quantized INT8 gradients.
    BpInt8,
    /// Unified INT8 training (UI8).
    BpUi8,
    /// Gradient-distribution-aware INT8 training (GDAI8).
    BpGdai8,
    /// Forward-Forward INT8 training with look-ahead (the paper's method).
    FfInt8,
}

impl AlgorithmKind {
    /// Report label matching the paper's Table V rows.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::BpFp32 => "BP-FP32",
            AlgorithmKind::BpInt8 => "BP-INT8",
            AlgorithmKind::BpUi8 => "BP-UI8",
            AlgorithmKind::BpGdai8 => "BP-GDAI8",
            AlgorithmKind::FfInt8 => "FF-INT8",
        }
    }

    /// All five algorithms in Table V order.
    pub fn table5_lineup() -> [AlgorithmKind; 5] {
        [
            AlgorithmKind::BpFp32,
            AlgorithmKind::BpInt8,
            AlgorithmKind::BpUi8,
            AlgorithmKind::BpGdai8,
            AlgorithmKind::FfInt8,
        ]
    }

    /// FP32 gradient-analysis overhead per gradient element (ops): zero for
    /// plain quantization, larger for the distribution-aware schemes.
    fn analysis_overhead(&self) -> u64 {
        match self {
            AlgorithmKind::BpFp32 => 0,
            AlgorithmKind::BpInt8 => 2,
            AlgorithmKind::BpUi8 => 8,
            AlgorithmKind::BpGdai8 => 12,
            AlgorithmKind::FfInt8 => 2,
        }
    }
}

/// Shape of one training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainingRun {
    /// Mini-batch size (the paper uses 32).
    pub batch_size: usize,
    /// Mini-batches per epoch.
    pub batches_per_epoch: usize,
    /// Number of epochs.
    pub epochs: usize,
}

impl TrainingRun {
    /// Total number of mini-batches processed.
    pub fn total_batches(&self) -> u64 {
        (self.batches_per_epoch * self.epochs) as u64
    }
}

/// Estimated cost of one full training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingCost {
    /// Wall-clock training time in seconds.
    pub time_s: f64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Peak memory footprint in bytes.
    pub memory_bytes: u64,
    /// Operation counts for a single mini-batch.
    pub batch_ops: OpCounts,
}

impl TrainingCost {
    /// Memory footprint in mebibytes (the unit of the paper's Table V).
    pub fn memory_mib(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// The analytic cost model: a device spec plus accounting rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    device: DeviceSpec,
    /// Fixed runtime overhead resident in memory (framework, kernels, I/O
    /// buffers) in bytes.
    pub runtime_overhead_bytes: u64,
}

impl CostModel {
    /// Cost model for the paper's Jetson Orin Nano setup.
    pub fn jetson_orin_nano() -> Self {
        CostModel {
            device: DeviceSpec::jetson_orin_nano(),
            runtime_overhead_bytes: 96 * 1024 * 1024,
        }
    }

    /// Builds a cost model around a custom device.
    pub fn new(device: DeviceSpec) -> Self {
        CostModel {
            device,
            runtime_overhead_bytes: 96 * 1024 * 1024,
        }
    }

    /// The underlying device specification.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Per-mini-batch operation counts for an algorithm on a model.
    pub fn batch_ops(
        &self,
        algorithm: AlgorithmKind,
        spec: &ModelSpec,
        batch_size: usize,
    ) -> OpCounts {
        match algorithm {
            AlgorithmKind::FfInt8 => ff_int8_batch_ops(spec, batch_size),
            AlgorithmKind::BpFp32 => bp_fp32_batch_ops(spec, batch_size),
            AlgorithmKind::BpInt8 | AlgorithmKind::BpUi8 | AlgorithmKind::BpGdai8 => {
                bp_int8_batch_ops(spec, batch_size, algorithm.analysis_overhead())
            }
        }
    }

    /// Wall-clock time of one mini-batch in seconds (roofline of compute and
    /// memory traffic).
    fn batch_time_s(&self, algorithm: AlgorithmKind, spec: &ModelSpec, batch_size: usize) -> f64 {
        let ops = self.batch_ops(algorithm, spec, batch_size);
        let d = &self.device;
        let int8_time = (ops.int8_mul + ops.int8_add) as f64 / d.sustained_int8_ops_per_s();
        let fp32_time =
            (ops.fp32_mul + ops.fp32_add + ops.cmp32) as f64 / d.sustained_fp32_flops_per_s();
        // Backpropagation spends two of its three GEMM families in the
        // backward pass, which runs at reduced efficiency compared to the
        // inference-optimised forward kernels (paper Section V-C). The FF
        // algorithm only executes forward-style GEMMs.
        let compute = match algorithm {
            AlgorithmKind::FfInt8 => int8_time + fp32_time,
            AlgorithmKind::BpFp32
            | AlgorithmKind::BpInt8
            | AlgorithmKind::BpUi8
            | AlgorithmKind::BpGdai8 => {
                let mac_time = int8_time.max(fp32_time.min(f64::MAX));
                let forward_share = mac_time / 3.0;
                let backward_share = 2.0 * mac_time / 3.0;
                forward_share
                    + backward_share / d.backward_efficiency
                    + if ops.int8_mul > 0 { fp32_time } else { 0.0 }
            }
        };
        let traffic = self.batch_dram_bytes(algorithm, spec, batch_size) as f64
            / d.memory_bandwidth_bytes_per_s;
        compute.max(traffic)
    }

    /// DRAM traffic of one mini-batch in bytes.
    ///
    /// Backpropagation touches the weights once per GEMM family (forward,
    /// gradient back-propagation, weight-gradient write) plus the optimizer
    /// update, and moves FP32 activations *and* activation gradients. The FF
    /// algorithm reads the weights only for its two forward passes (there is
    /// no gA GEMM) and moves INT8 activations with no activation-gradient
    /// chain.
    fn batch_dram_bytes(
        &self,
        algorithm: AlgorithmKind,
        spec: &ModelSpec,
        batch_size: usize,
    ) -> u64 {
        let weight_bytes = spec.param_count() * 4;
        let act_elements = spec.activation_elements() * batch_size as u64;
        let (weight_traffic, act_bytes_per_elem) = match algorithm {
            AlgorithmKind::FfInt8 => (3, 2),
            AlgorithmKind::BpFp32 => (4, 8),
            AlgorithmKind::BpInt8 | AlgorithmKind::BpUi8 | AlgorithmKind::BpGdai8 => (4, 6),
        };
        weight_traffic * weight_bytes + act_elements * act_bytes_per_elem
    }

    /// Peak memory footprint in bytes.
    pub fn memory_footprint(
        &self,
        algorithm: AlgorithmKind,
        spec: &ModelSpec,
        batch_size: usize,
    ) -> u64 {
        let params = spec.param_count();
        let batch = batch_size as u64;
        let weights = params * 4;
        let momentum = params * 4;
        let input = spec.input_elements as u64 * batch * 4;
        let activations = spec.activation_elements() * batch;
        let max_layer_activation = spec.max_layer_activation() * batch;
        let (grad_bytes, act_footprint) = match algorithm {
            AlgorithmKind::BpFp32 => {
                // FP32 activations + activation gradients + autograd graph
                // bookkeeping (~50% of activation storage).
                (
                    params * 4,
                    activations * 4 + activations * 4 + activations * 2,
                )
            }
            AlgorithmKind::BpInt8 => (params, activations * 4 + activations * 4 + activations * 2),
            AlgorithmKind::BpUi8 => {
                // UI8 keeps activations in INT8 but still needs the FP32
                // activation-gradient chain and graph bookkeeping.
                (params, activations + activations * 4 + activations * 2)
            }
            AlgorithmKind::BpGdai8 => (params, activations + activations * 4 + activations),
            AlgorithmKind::FfInt8 => {
                // Look-ahead keeps one INT8 copy of each layer's activations
                // for the current batch (needed for the per-layer gW GEMMs)
                // but no activation-gradient chain and no autograd graph.
                // The goodness relay only ever materialises two layers at a
                // time in FP32.
                (params, activations + max_layer_activation * 2 * 4)
            }
        };
        self.runtime_overhead_bytes + weights + momentum + grad_bytes + input + act_footprint
    }

    /// Energy of one mini-batch in joules: dynamic compute energy + DRAM
    /// traffic energy + idle power over the batch duration.
    fn batch_energy_j(&self, algorithm: AlgorithmKind, spec: &ModelSpec, batch_size: usize) -> f64 {
        let ops = self.batch_ops(algorithm, spec, batch_size);
        let d = &self.device;
        let dynamic = ops.int8_mul as f64 * d.energy_per_int8_mac_j
            + (ops.fp32_mul + ops.fp32_add + ops.cmp32) as f64 * d.energy_per_fp32_flop_j;
        let dram =
            self.batch_dram_bytes(algorithm, spec, batch_size) as f64 * d.energy_per_dram_byte_j;
        let idle = d.idle_power_w * self.batch_time_s(algorithm, spec, batch_size);
        dynamic + dram + idle
    }

    /// Estimates the full-run cost of training `spec` with `algorithm`.
    pub fn estimate(
        &self,
        algorithm: AlgorithmKind,
        spec: &ModelSpec,
        run: &TrainingRun,
    ) -> TrainingCost {
        let batches = run.total_batches() as f64;
        let time_s = self.batch_time_s(algorithm, spec, run.batch_size) * batches;
        let energy_j = self.batch_energy_j(algorithm, spec, run.batch_size) * batches;
        let memory_bytes = self.memory_footprint(algorithm, spec, run.batch_size);
        TrainingCost {
            time_s,
            energy_j,
            memory_bytes,
            batch_ops: self.batch_ops(algorithm, spec, run.batch_size),
        }
    }

    /// `true` when the estimated footprint fits in the device DRAM.
    pub fn fits_in_memory(
        &self,
        algorithm: AlgorithmKind,
        spec: &ModelSpec,
        batch_size: usize,
    ) -> bool {
        self.memory_footprint(algorithm, spec, batch_size) <= self.device.memory_bytes
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::jetson_orin_nano()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_models::specs;

    fn run() -> TrainingRun {
        TrainingRun {
            batch_size: 32,
            batches_per_epoch: 1563, // CIFAR-10 50k / 32
            epochs: 30,
        }
    }

    #[test]
    fn labels_and_lineup() {
        assert_eq!(AlgorithmKind::FfInt8.label(), "FF-INT8");
        assert_eq!(AlgorithmKind::table5_lineup().len(), 5);
        assert_eq!(
            TrainingRun {
                batch_size: 1,
                batches_per_epoch: 10,
                epochs: 3
            }
            .total_batches(),
            30
        );
    }

    #[test]
    fn ff_int8_beats_bp_fp32_on_every_axis() {
        // Table V, "Avg. difference between FF-INT8 and BP-FP32": FF-INT8
        // saves time, energy and memory.
        let model = CostModel::jetson_orin_nano();
        for spec in specs::table2_specs() {
            let ff = model.estimate(AlgorithmKind::FfInt8, &spec, &run());
            let bp = model.estimate(AlgorithmKind::BpFp32, &spec, &run());
            assert!(ff.time_s < bp.time_s, "{}: time", spec.name);
            assert!(ff.energy_j < bp.energy_j, "{}: energy", spec.name);
            assert!(ff.memory_bytes < bp.memory_bytes, "{}: memory", spec.name);
        }
    }

    #[test]
    fn ff_int8_beats_gdai8_on_every_axis() {
        // Table V, state-of-the-art comparison: FF-INT8 saves time, energy
        // and (especially) memory relative to BP-GDAI8.
        let model = CostModel::jetson_orin_nano();
        for spec in specs::table2_specs() {
            let ff = model.estimate(AlgorithmKind::FfInt8, &spec, &run());
            let gdai8 = model.estimate(AlgorithmKind::BpGdai8, &spec, &run());
            assert!(ff.time_s < gdai8.time_s, "{}: time", spec.name);
            assert!(ff.energy_j < gdai8.energy_j, "{}: energy", spec.name);
            assert!(
                ff.memory_bytes < gdai8.memory_bytes,
                "{}: memory",
                spec.name
            );
        }
    }

    #[test]
    fn int8_backprop_is_cheaper_than_fp32_backprop() {
        let model = CostModel::jetson_orin_nano();
        let spec = specs::resnet18_spec();
        let fp32 = model.estimate(AlgorithmKind::BpFp32, &spec, &run());
        let int8 = model.estimate(AlgorithmKind::BpInt8, &spec, &run());
        assert!(int8.time_s < fp32.time_s);
        assert!(int8.energy_j < fp32.energy_j);
        assert!(int8.memory_bytes < fp32.memory_bytes);
    }

    #[test]
    fn gdai8_overhead_exceeds_plain_int8() {
        let model = CostModel::jetson_orin_nano();
        let spec = specs::mobilenet_v2_spec();
        let plain = model.estimate(AlgorithmKind::BpInt8, &spec, &run());
        let gdai8 = model.estimate(AlgorithmKind::BpGdai8, &spec, &run());
        assert!(gdai8.time_s >= plain.time_s);
    }

    #[test]
    fn memory_fits_on_the_board() {
        let model = CostModel::jetson_orin_nano();
        for spec in specs::table2_specs() {
            assert!(
                model.fits_in_memory(AlgorithmKind::BpFp32, &spec, 32),
                "{} should fit in 4 GB",
                spec.name
            );
        }
    }

    #[test]
    fn memory_mib_conversion() {
        let cost = TrainingCost {
            time_s: 1.0,
            energy_j: 1.0,
            memory_bytes: 512 * 1024 * 1024,
            batch_ops: OpCounts::default(),
        };
        assert!((cost.memory_mib() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn cost_scales_linearly_with_epochs() {
        let model = CostModel::jetson_orin_nano();
        let spec = specs::mlp_spec(&[1000, 1000]);
        let short = model.estimate(
            AlgorithmKind::FfInt8,
            &spec,
            &TrainingRun {
                batch_size: 32,
                batches_per_epoch: 100,
                epochs: 1,
            },
        );
        let long = model.estimate(
            AlgorithmKind::FfInt8,
            &spec,
            &TrainingRun {
                batch_size: 32,
                batches_per_epoch: 100,
                epochs: 10,
            },
        );
        assert!((long.time_s / short.time_s - 10.0).abs() < 1e-6);
        assert_eq!(long.memory_bytes, short.memory_bytes);
    }
}
