//! Operation-count accounting (paper Table IV categories).

use ff_models::ModelSpec;
use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Operation counts broken down by the categories of the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCounts {
    /// 8-bit integer multiplications (MAC phase).
    pub int8_mul: u64,
    /// 8-bit integer additions with 32-bit accumulation (MAC phase).
    pub int8_add: u64,
    /// 32-bit floating-point multiplications (MAC phase of FP32 training).
    pub fp32_mul: u64,
    /// 32-bit floating-point additions.
    pub fp32_add: u64,
    /// 32-bit comparisons (quantization phase: max-abs scans, clipping).
    pub cmp32: u64,
}

impl OpCounts {
    /// Total MAC-phase operations (both precisions).
    pub fn mac_ops(&self) -> u64 {
        self.int8_mul + self.int8_add + self.fp32_mul + self.fp32_add
    }

    /// Total quantization-phase operations.
    pub fn quantization_ops(&self) -> u64 {
        self.cmp32
    }

    /// Total INT8 MACs (counting one multiply–add pair as one MAC).
    pub fn int8_macs(&self) -> u64 {
        self.int8_mul
    }

    /// Total FP32 MACs.
    pub fn fp32_macs(&self) -> u64 {
        self.fp32_mul
    }

    /// Scales every count by an integer factor (e.g. batches per epoch).
    pub fn scaled(&self, factor: u64) -> OpCounts {
        OpCounts {
            int8_mul: self.int8_mul * factor,
            int8_add: self.int8_add * factor,
            fp32_mul: self.fp32_mul * factor,
            fp32_add: self.fp32_add * factor,
            cmp32: self.cmp32 * factor,
        }
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            int8_mul: self.int8_mul + rhs.int8_mul,
            int8_add: self.int8_add + rhs.int8_add,
            fp32_mul: self.fp32_mul + rhs.fp32_mul,
            fp32_add: self.fp32_add + rhs.fp32_add,
            cmp32: self.cmp32 + rhs.cmp32,
        }
    }
}

/// Per-mini-batch operation counts for FF-INT8 training with look-ahead
/// (Algorithm 1): a positive and a negative forward pass in INT8, plus one
/// INT8 weight-gradient GEMM per MAC layer per pass. No gradient is
/// back-propagated to layer inputs.
pub fn ff_int8_batch_ops(spec: &ModelSpec, batch: usize) -> OpCounts {
    let forward = spec.forward_macs() * batch as u64;
    // gW GEMMs cost the same MACs as the forward GEMMs of the same layers.
    let grad_w = forward;
    let passes = 2; // positive + negative
    let int8_macs = passes * (forward + grad_w);
    // Quantization phase: one comparison per element scanned for the max-abs
    // scale. Activations and inputs are scanned once per pass; weights and
    // weight gradients are scanned once per mini-batch.
    let per_pass = (spec.input_elements as u64 + spec.activation_elements()) * batch as u64;
    let per_batch = spec.param_count() * 2;
    let elements_scanned = per_pass * passes + per_batch;
    OpCounts {
        int8_mul: int8_macs,
        int8_add: int8_macs,
        fp32_mul: 0,
        fp32_add: elements_scanned, // scale multiplies / stochastic rounding adds
        cmp32: elements_scanned,
    }
}

/// Per-mini-batch operation counts for FP32 backpropagation: forward GEMMs,
/// weight-gradient GEMMs and the gradient back-propagation GEMMs from the
/// last layer to the first.
pub fn bp_fp32_batch_ops(spec: &ModelSpec, batch: usize) -> OpCounts {
    let forward = spec.forward_macs() * batch as u64;
    let grad_w = forward;
    let grad_input = forward; // the backward chain the FF algorithm avoids
    let fp32_macs = forward + grad_w + grad_input;
    OpCounts {
        fp32_mul: fp32_macs,
        fp32_add: fp32_macs,
        ..OpCounts::default()
    }
}

/// Per-mini-batch operation counts for INT8 backpropagation (BP-INT8, UI8 and
/// GDAI8): the same three GEMM families as BP-FP32 but in INT8, plus an
/// FP32 gradient-analysis overhead per gradient element (direction-sensitive
/// clipping for UI8, distribution analysis for GDAI8).
pub fn bp_int8_batch_ops(
    spec: &ModelSpec,
    batch: usize,
    analysis_flops_per_grad_element: u64,
) -> OpCounts {
    let forward = spec.forward_macs() * batch as u64;
    let int8_macs = 3 * forward;
    let grad_elements = spec.param_count();
    let analysis = grad_elements * analysis_flops_per_grad_element;
    OpCounts {
        int8_mul: int8_macs,
        int8_add: int8_macs,
        fp32_add: analysis,
        fp32_mul: 0,
        cmp32: grad_elements + spec.activation_elements() * batch as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_models::specs;

    #[test]
    fn add_and_scale() {
        let a = OpCounts {
            int8_mul: 1,
            int8_add: 2,
            fp32_mul: 3,
            fp32_add: 4,
            cmp32: 5,
        };
        let b = a + a;
        assert_eq!(b.int8_mul, 2);
        assert_eq!(b.cmp32, 10);
        assert_eq!(a.scaled(3).fp32_add, 12);
        assert_eq!(a.mac_ops(), 10);
        assert_eq!(a.quantization_ops(), 5);
    }

    #[test]
    fn ff_has_no_fp32_macs_and_bp_fp32_has_no_int8() {
        let spec = specs::mlp_depth_spec(3);
        let ff = ff_int8_batch_ops(&spec, 10);
        assert_eq!(ff.fp32_macs(), 0);
        assert!(ff.int8_macs() > 0);
        let bp = bp_fp32_batch_ops(&spec, 10);
        assert_eq!(bp.int8_macs(), 0);
        assert!(bp.fp32_macs() > 0);
    }

    #[test]
    fn ff_avoids_the_backward_chain() {
        // FF per pass: forward + gW = 2 GEMM units; BP: 3 GEMM units. Per
        // batch FF runs two passes (positive + negative).
        let spec = specs::mlp_depth_spec(2);
        let batch = 10;
        let forward = spec.forward_macs() * batch as u64;
        let ff = ff_int8_batch_ops(&spec, batch);
        let bp = bp_fp32_batch_ops(&spec, batch);
        assert_eq!(ff.int8_macs(), 4 * forward);
        assert_eq!(bp.fp32_macs(), 3 * forward);
    }

    #[test]
    fn quantization_phase_is_negligible_vs_mac_phase() {
        // Paper Section V-C: the quantization phase is orders of magnitude
        // smaller than the MAC phase.
        let spec = specs::mlp_depth_spec(3);
        let ff = ff_int8_batch_ops(&spec, 10);
        assert!(ff.quantization_ops() * 20 < ff.mac_ops());
    }

    #[test]
    fn analysis_overhead_scales_with_policy() {
        let spec = specs::mlp_depth_spec(2);
        let direct = bp_int8_batch_ops(&spec, 10, 2);
        let gdai8 = bp_int8_batch_ops(&spec, 10, 10);
        assert!(gdai8.fp32_add > direct.fp32_add);
        assert_eq!(gdai8.int8_macs(), direct.int8_macs());
    }
}
