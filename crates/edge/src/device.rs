//! The edge-device specification (paper Table III).

use serde::{Deserialize, Serialize};

/// Hardware characteristics of the target edge device.
///
/// Defaults model the NVIDIA Jetson Orin Nano used by the paper
/// (Table III: 512-core Ampere GPU, 20 TOPS INT8, 4 GB LPDDR5 @ 34 GB/s,
/// 7–10 W power envelope).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device name.
    pub name: String,
    /// Peak INT8 throughput in operations per second (MAC counts as two ops).
    pub peak_int8_ops_per_s: f64,
    /// Peak FP32 throughput in FLOP/s.
    pub peak_fp32_flops_per_s: f64,
    /// Fraction of peak throughput realistically sustained by GEMM kernels.
    pub utilization: f64,
    /// Efficiency of backward-pass GEMMs relative to forward GEMMs (the paper
    /// notes forward passes benefit from inference-optimised kernels).
    pub backward_efficiency: f64,
    /// DRAM capacity in bytes.
    pub memory_bytes: u64,
    /// DRAM bandwidth in bytes per second.
    pub memory_bandwidth_bytes_per_s: f64,
    /// Board power when busy, in watts.
    pub active_power_w: f64,
    /// Board power when idle, in watts.
    pub idle_power_w: f64,
    /// Dynamic energy per INT8 MAC in joules.
    pub energy_per_int8_mac_j: f64,
    /// Dynamic energy per FP32 FLOP in joules.
    pub energy_per_fp32_flop_j: f64,
    /// Dynamic energy per byte of DRAM traffic in joules.
    pub energy_per_dram_byte_j: f64,
}

impl DeviceSpec {
    /// The NVIDIA Jetson Orin Nano (paper Table III).
    pub fn jetson_orin_nano() -> Self {
        DeviceSpec {
            name: "NVIDIA Jetson Orin Nano".to_string(),
            // 20 TOPS INT8 (Table III), counting multiply and add separately.
            peak_int8_ops_per_s: 20.0e12,
            // 512-core Ampere GPU at ~0.6 GHz, 2 FLOP/cycle/core ≈ 1.3 TFLOPS.
            peak_fp32_flops_per_s: 1.28e12,
            utilization: 0.25,
            backward_efficiency: 0.6,
            memory_bytes: 4 * 1024 * 1024 * 1024,
            memory_bandwidth_bytes_per_s: 34.0e9,
            active_power_w: 10.0,
            idle_power_w: 3.0,
            // ~0.35 pJ per INT8 MAC and ~1.5 pJ per FP32 FLOP are typical for
            // edge-class accelerators in this power envelope.
            energy_per_int8_mac_j: 0.35e-12,
            energy_per_fp32_flop_j: 1.5e-12,
            energy_per_dram_byte_j: 20.0e-12,
        }
    }

    /// Effective sustained INT8 ops per second.
    pub fn sustained_int8_ops_per_s(&self) -> f64 {
        self.peak_int8_ops_per_s * self.utilization
    }

    /// Effective sustained FP32 FLOP/s.
    pub fn sustained_fp32_flops_per_s(&self) -> f64 {
        self.peak_fp32_flops_per_s * self.utilization
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::jetson_orin_nano()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jetson_spec_matches_table3() {
        let d = DeviceSpec::jetson_orin_nano();
        assert_eq!(d.peak_int8_ops_per_s, 20.0e12);
        assert_eq!(d.memory_bytes, 4 * 1024 * 1024 * 1024);
        assert!((d.memory_bandwidth_bytes_per_s - 34.0e9).abs() < 1.0);
        assert!(d.active_power_w >= 7.0 && d.active_power_w <= 10.0);
    }

    #[test]
    fn int8_is_faster_than_fp32() {
        let d = DeviceSpec::default();
        assert!(d.sustained_int8_ops_per_s() > 4.0 * d.sustained_fp32_flops_per_s());
    }

    #[test]
    fn sustained_rates_respect_utilization() {
        let d = DeviceSpec::jetson_orin_nano();
        assert!(d.sustained_int8_ops_per_s() < d.peak_int8_ops_per_s);
        assert!(d.sustained_fp32_flops_per_s() < d.peak_fp32_flops_per_s);
    }
}
