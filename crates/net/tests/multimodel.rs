//! The multi-model serving gate (`scripts/check.sh`): train two models,
//! serve both from one port behind one micro-batcher, prove per-model
//! **bit-exact parity** against direct [`FrozenModel`] calls, hot-swap one
//! entry from a rotating `FF8C` checkpoint via the training session's
//! `on_checkpoint` hook while traffic flows, and verify the auth model —
//! missing/wrong/out-of-scope tokens get typed `Unauthorized` replies, an
//! unknown model id gets `UnknownModel`, and shutdown itself requires a
//! credential.

use ff_core::checkpoint::latest;
use ff_core::{Algorithm, Checkpoint, TrainOptions, TrainSession};
use ff_data::{synthetic_mnist, SyntheticConfig};
use ff_models::small_mlp;
use ff_net::{
    AuthPolicy, AuthToken, Client, ClientConfig, ErrorCode, NetConfig, NetError, NetServer,
};
use ff_serve::{FrozenModel, ModelRegistry, ServeConfig, ServeMode, DEFAULT_MODEL_ID};
use ff_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FEATURES: usize = 784;
const CLASSES: usize = 10;
const CANDIDATE_ID: u16 = 7;
const ADMIN_TOKEN: &str = "ops-master-key";
const TENANT_TOKEN: &str = "tenant-candidate-key";

fn dataset() -> (ff_data::Dataset, ff_data::Dataset) {
    synthetic_mnist(&SyntheticConfig {
        train_size: 64,
        test_size: 32,
        noise_std: 0.2,
        max_shift: 0,
        seed: 14,
    })
}

/// Trains `steps` mini-batches from `seed` and returns the frozen result.
fn trained_model(hidden: usize, seed: u64, steps: usize) -> FrozenModel {
    let (train_set, test_set) = dataset();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = small_mlp(FEATURES, &[hidden], CLASSES, &mut rng);
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &TrainOptions::fast_test(),
    )
    .unwrap();
    for _ in 0..steps {
        session.step().unwrap();
    }
    drop(session);
    FrozenModel::freeze(&net, CLASSES).unwrap()
}

fn probe_rows(count: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(3);
    ff_tensor::init::uniform(&[count, FEATURES], -1.0, 1.0, &mut rng)
}

fn client_for(addr: std::net::SocketAddr, model: u16, token: &str) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            model,
            token: Some(token.to_string()),
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

fn remote_code(error: NetError) -> ErrorCode {
    match error {
        NetError::Remote { code, .. } => code,
        other => panic!("expected a typed remote error, got {other:?}"),
    }
}

#[test]
fn two_models_one_port_with_hot_swap_and_auth() {
    let model_a = trained_model(4, 1, 2);
    let model_b = trained_model(6, 2, 2);
    let x = probe_rows(16);
    let direct_a = model_a.predict_logits(&x).unwrap();
    let direct_b = model_b.predict_logits(&x).unwrap();
    assert_ne!(
        direct_a, direct_b,
        "the two trained models must be distinguishable for routing proof"
    );

    let registry = ModelRegistry::new(model_a);
    registry
        .register(CANDIDATE_ID, "candidate", model_b)
        .unwrap();
    let server = NetServer::bind_registry(
        registry.clone(),
        "127.0.0.1:0",
        NetConfig {
            auth: AuthPolicy::with_tokens(vec![
                AuthToken::new(ADMIN_TOKEN),
                AuthToken::for_models(TENANT_TOKEN, &[CANDIDATE_ID]),
            ]),
            // The test keeps several probe clients open at once; the pool
            // bound must cover them or the extras queue unserviced.
            conn_threads: 8,
            serve: ServeConfig {
                workers: 2,
                mode: ServeMode::Logits,
                ..ServeConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // --- Per-model parity: both models, one port, bit-exact vs direct. ---
    let rows: Vec<&[f32]> = (0..x.rows()).map(|i| x.row(i)).collect();
    let mut default_client = client_for(addr, DEFAULT_MODEL_ID, ADMIN_TOKEN);
    let mut candidate_client = client_for(addr, CANDIDATE_ID, TENANT_TOKEN);
    let served_a = default_client
        .predict_pipelined(rows.iter().copied())
        .unwrap();
    let served_b = candidate_client
        .predict_pipelined(rows.iter().copied())
        .unwrap();
    assert_eq!(
        served_a, direct_a,
        "default model diverged from direct calls"
    );
    assert_eq!(
        served_b, direct_b,
        "candidate model diverged from direct calls"
    );
    // Batch frames route identically.
    assert_eq!(
        candidate_client.predict_batch(FEATURES, x.row(0)).unwrap(),
        vec![direct_b[0]]
    );

    // Health reports the addressed model: shapes and swap generation.
    let info = candidate_client.health().unwrap();
    assert_eq!(info.input_features, FEATURES);
    assert_eq!(info.model_version, 1);

    // --- Auth: typed Unauthorized, never a served prediction. ---
    // No token at all.
    let mut anonymous = Client::connect_with(
        addr,
        ClientConfig {
            model: DEFAULT_MODEL_ID,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let code = remote_code(anonymous.predict(x.row(0)).unwrap_err());
    assert_eq!(code, ErrorCode::Unauthorized);
    // Wrong token.
    let mut wrong = client_for(addr, DEFAULT_MODEL_ID, "not-a-real-token");
    assert_eq!(
        remote_code(wrong.predict(x.row(0)).unwrap_err()),
        ErrorCode::Unauthorized
    );
    drop(wrong);
    // A valid token outside its model ACL.
    let mut out_of_scope = client_for(addr, DEFAULT_MODEL_ID, TENANT_TOKEN);
    assert_eq!(
        remote_code(out_of_scope.predict(x.row(0)).unwrap_err()),
        ErrorCode::Unauthorized
    );
    drop(out_of_scope);
    // Stats and Health stay open for operators even without a token.
    anonymous.health().unwrap();
    assert!(anonymous.stats().unwrap().requests >= 16);
    // Shutdown requires a credential.
    assert_eq!(
        remote_code(anonymous.shutdown_server().unwrap_err()),
        ErrorCode::Unauthorized
    );
    assert!(
        !server.is_shutting_down(),
        "rejected shutdown must not drain"
    );
    // An unknown model id is a typed error, not a hijacked default.
    let mut unknown = client_for(addr, 9, ADMIN_TOKEN);
    assert_eq!(
        remote_code(unknown.predict(x.row(0)).unwrap_err()),
        ErrorCode::UnknownModel
    );
    drop(unknown);

    // --- Hot-swap the candidate from a rotating checkpoint, live. ---
    // A fresh training run auto-checkpoints every step; its on_checkpoint
    // hook reloads each rotated artifact straight into the serving
    // registry while clients keep querying between steps.
    let dir = std::env::temp_dir().join("ff8p_multimodel_swap_it");
    std::fs::remove_dir_all(&dir).ok();
    let (train_set, test_set) = dataset();
    let mut rng = StdRng::seed_from_u64(5);
    let mut training_net = small_mlp(FEATURES, &[6], CLASSES, &mut rng);
    let mut session = TrainSession::new(
        &mut training_net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &TrainOptions::fast_test(),
    )
    .unwrap();
    session
        .auto_checkpoint(ff_core::AutoCheckpoint::new(&dir, 1, 2))
        .unwrap();
    let swap_registry = registry.clone();
    let mut scratch = {
        let mut rng = StdRng::seed_from_u64(6);
        small_mlp(FEATURES, &[6], CLASSES, &mut rng)
    };
    session.on_checkpoint(move |path| {
        let checkpoint = Checkpoint::load(path).expect("hook path is a live artifact");
        swap_registry
            .swap_from_checkpoint(CANDIDATE_ID, &checkpoint, &mut scratch, CLASSES)
            .expect("rotated artifact must swap in");
    });
    for _ in 0..3 {
        session.step().unwrap();
        // Live traffic between swaps: requests must keep succeeding and
        // the default model must be untouched by candidate rollouts.
        assert_eq!(
            default_client
                .predict_pipelined(rows.iter().copied())
                .unwrap(),
            direct_a
        );
        assert!(candidate_client.predict(x.row(0)).is_ok());
    }
    drop(session);

    // The served candidate now answers exactly like the newest rotated
    // artifact restored directly.
    let newest = latest(&dir).unwrap().expect("rotation kept artifacts");
    let checkpoint = Checkpoint::load(&newest).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut fresh = small_mlp(FEATURES, &[6], CLASSES, &mut rng);
    let direct_swapped = FrozenModel::from_checkpoint(&checkpoint, &mut fresh, CLASSES)
        .unwrap()
        .predict_logits(&x)
        .unwrap();
    assert_eq!(
        candidate_client
            .predict_pipelined(rows.iter().copied())
            .unwrap(),
        direct_swapped,
        "hot-swapped candidate diverged from the checkpoint it came from"
    );
    assert_eq!(
        candidate_client.health().unwrap().model_version,
        4, // registered at 1, three checkpoint swaps
    );
    // The default model never moved.
    assert_eq!(default_client.health().unwrap().model_version, 1);

    // Per-model stats made it to the wire.
    let stats = anonymous.stats().unwrap();
    let candidate = stats
        .models
        .iter()
        .find(|m| m.id == CANDIDATE_ID)
        .expect("candidate stats on the wire");
    assert_eq!(candidate.name, "candidate");
    assert_eq!(candidate.swaps, 3);
    assert!(candidate.requests > 0);

    // An authorized shutdown drains for real.
    let mut admin = client_for(addr, DEFAULT_MODEL_ID, ADMIN_TOKEN);
    admin.shutdown_server().unwrap();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn auth_rotation_applies_to_new_connections_without_restart() {
    let model = trained_model(4, 5, 2);
    let x = probe_rows(2);
    let server = NetServer::bind_registry(
        ModelRegistry::new(model),
        "127.0.0.1:0",
        NetConfig {
            auth: AuthPolicy::with_tokens(vec![AuthToken::new("old-key")]),
            conn_threads: 4,
            serve: ServeConfig {
                workers: 1,
                mode: ServeMode::Logits,
                ..ServeConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // A connection established before the rotation...
    let mut veteran = client_for(addr, DEFAULT_MODEL_ID, "old-key");
    veteran.predict(x.row(0)).unwrap();

    // ...rotate the fleet's tokens in place, no restart...
    server.set_auth(AuthPolicy::with_tokens(vec![AuthToken::new("new-key")]));

    // ...the in-flight connection finishes under the policy it started
    // with (a rotation never cuts a conversation mid-stream)...
    veteran.predict(x.row(1)).unwrap();

    // ...while new connections see only the rotated policy: the old token
    // is dead, the new one works.
    let mut stale = client_for(addr, DEFAULT_MODEL_ID, "old-key");
    assert_eq!(
        remote_code(stale.predict(x.row(0)).unwrap_err()),
        ErrorCode::Unauthorized,
        "the retired token must be refused on new connections"
    );
    let mut fresh = client_for(addr, DEFAULT_MODEL_ID, "new-key");
    fresh.predict(x.row(0)).unwrap();

    // Rotating back to open restores anonymous access for new connections.
    server.set_auth(AuthPolicy::open());
    let mut anonymous = Client::connect_with(
        addr,
        ClientConfig {
            model: DEFAULT_MODEL_ID,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    anonymous.predict(x.row(0)).unwrap();
    server.shutdown();
}
