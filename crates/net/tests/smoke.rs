//! The network smoke gate run by `scripts/check.sh`: train a tiny FF-INT8
//! model, freeze it, serve it over a TCP socket on an ephemeral port,
//! answer N concurrent client predicts, shut down cleanly, and assert
//! accuracy parity with in-process serving (which is exact, because the
//! network path is bit-identical to direct frozen inference).

use ff_core::{FfTrainer, Precision, TrainOptions};
use ff_data::{synthetic_mnist, SyntheticConfig};
use ff_metrics::accuracy;
use ff_models::small_mlp;
use ff_net::{Client, NetConfig, NetServer};
use ff_serve::{FrozenModel, ServeConfig, ServeMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

#[test]
fn net_smoke_gate() {
    // 1. Train a tiny model with FF-INT8 (+ look-ahead).
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 300,
        test_size: 100,
        noise_std: 0.15,
        max_shift: 0,
        seed: 5,
    });
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = small_mlp(784, &[48], 10, &mut rng);
    let options = TrainOptions {
        epochs: 5,
        learning_rate: 0.2,
        max_eval_samples: 100,
        ..TrainOptions::default()
    };
    let mut trainer = FfTrainer::new(Precision::Int8, true, options);
    let history = trainer
        .train(&mut net, &train_set, &test_set)
        .expect("training");
    let trained_accuracy = history.final_accuracy().expect("history has accuracy");
    assert!(
        trained_accuracy > 0.5,
        "training collapsed: accuracy {trained_accuracy}"
    );

    // 2. Freeze, and compute the in-process reference predictions.
    let frozen = FrozenModel::freeze(&net, 10).expect("freeze");
    let request_count = 100usize;
    let subset = test_set.take(request_count).expect("subset");
    let x = subset.flattened().expect("flatten");
    let direct_predictions = frozen.predict_goodness(&x).expect("direct predictions");
    let direct_accuracy = accuracy(&direct_predictions, subset.labels());

    // 3. Spawn the TCP front-end on an ephemeral port.
    let server = NetServer::bind(
        frozen,
        "127.0.0.1:0",
        NetConfig {
            conn_threads: 4,
            read_timeout: Duration::from_millis(200),
            serve: ServeConfig {
                workers: 2,
                mode: ServeMode::Goodness,
                ..ServeConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // 4. N concurrent clients predict over the wire (single + pipelined).
    let clients = 4usize;
    let per_client = request_count / clients;
    let mut served_predictions = vec![0usize; request_count];
    std::thread::scope(|scope| {
        for (client_index, chunk) in served_predictions.chunks_mut(per_client).enumerate() {
            let x = &x;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let base = client_index * per_client;
                let half = per_client / 2;
                for (offset, slot) in chunk.iter_mut().enumerate().take(half) {
                    *slot = client.predict(x.row(base + offset)).expect("request");
                }
                let rest = client
                    .predict_pipelined((half..per_client).map(|offset| x.row(base + offset)))
                    .expect("pipelined wave");
                chunk[half..].copy_from_slice(&rest);
                client.close();
            });
        }
    });

    // 5. Parity: network answers are bit-identical to direct frozen
    //    inference, so accuracy parity with in-process serving is exact.
    assert_eq!(
        served_predictions, direct_predictions,
        "network predictions diverged from direct frozen inference"
    );
    let served_accuracy = accuracy(&served_predictions, subset.labels());
    assert_eq!(served_accuracy, direct_accuracy, "accuracy parity violated");

    // 6. Stats over the wire, then clean shutdown.
    let mut client = Client::connect(addr).expect("stats client");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, request_count as u64);
    assert_eq!(stats.latency.count, request_count as u64);
    println!(
        "net smoke: trained={trained_accuracy:.3} served={served_accuracy:.3} \
         batches={} mean_batch={:.2} p99={:?}",
        stats.batches, stats.mean_batch, stats.latency.p99
    );
    client.shutdown_server().expect("shutdown frame");
    server.shutdown();
    // The listener is gone: a fresh connect fails, or — if the ephemeral
    // port was recycled by another process — reaches a different server.
    match Client::connect(addr).and_then(|mut c| c.health()) {
        Err(_) => {}
        Ok(info) => assert_ne!(
            info.input_features, 784,
            "server kept serving after clean shutdown"
        ),
    }
}
