//! Wire-level smoke gate for the observability surfaces: serve under load,
//! dump traces and metrics over FF8P, and hold the flight-recorder
//! invariants — every completed trace's stage stamps are monotonic, the
//! reply-written stamp lands at (just under) the end-to-end latency, and
//! the per-stage histograms folded into `StatsReply` account for every
//! served request.

use ff_models::small_mlp;
use ff_net::{Client, ClientConfig, NetConfig, NetServer};
use ff_serve::{FrozenModel, ServeConfig, Stage, TraceSettings};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const FEATURES: usize = 12;
const CLASSES: usize = 3;
const REQUESTS: usize = 120;

fn frozen(seed: u64) -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(seed);
    FrozenModel::freeze(&small_mlp(FEATURES, &[10], CLASSES, &mut rng), CLASSES).unwrap()
}

fn traced_config(trace: TraceSettings) -> NetConfig {
    NetConfig {
        serve: ServeConfig {
            workers: 2,
            trace,
            ..ServeConfig::default()
        },
        ..NetConfig::default()
    }
}

/// The stage order every complete trace must respect.
const PATH: [Stage; 6] = [
    Stage::Recv,
    Stage::Admit,
    Stage::Enqueue,
    Stage::WaveStart,
    Stage::GemmDone,
    Stage::ReplyWritten,
];

#[test]
fn trace_dump_over_the_wire_is_monotonic_and_accounts_for_latency() {
    let server = NetServer::bind(
        frozen(21),
        "127.0.0.1:0",
        traced_config(TraceSettings {
            capacity: 256,
            // u32::MAX admits every request deterministically (no token
            // bucket), so the dump below must hold ALL of them.
            sample_per_sec: u32::MAX,
            ..TraceSettings::default()
        }),
    )
    .unwrap();
    let addr = server.local_addr();

    // Load from two concurrent connections so rows coalesce into batches.
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..REQUESTS / 2 {
                    assert!(client.predict(&[0.4; FEATURES]).unwrap() < CLASSES);
                }
                client.close();
            });
        }
    });

    let mut client = Client::connect(addr).unwrap();
    let (dropped, traces) = client.trace_dump(0).unwrap();
    assert_eq!(dropped, 0, "uncontended run must not drop traces");
    assert_eq!(
        traces.len(),
        REQUESTS,
        "every request was sampled and fits the ring"
    );
    // Traces commit when their last handle drops, so concurrent
    // connections interleave commit order — but every sequence number
    // appears exactly once.
    let mut seqs: Vec<u64> = traces.iter().map(|t| t.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), REQUESTS, "duplicate or missing trace seqs");
    for trace in &traces {
        assert!(trace.sampled && trace.completed, "half-stamped trace");
        assert!(trace.is_monotonic(), "non-monotonic stamps: {trace:?}");
        // All six stages stamped, in path order.
        let mut previous = 0;
        for stage in PATH {
            let at = trace
                .stamp(stage)
                .unwrap_or_else(|| panic!("completed trace missing {}: {trace:?}", stage.name()));
            assert!(at >= previous, "{} precedes its predecessor", stage.name());
            previous = at;
        }
        // The stamps are offsets from recv, so the last one must land at
        // (just under) the end-to-end latency: the walk through the stages
        // accounts for the whole request, with only the commit-on-drop gap
        // (well under a millisecond) unaccounted.
        let reply = trace.stamp(Stage::ReplyWritten).unwrap();
        assert!(reply <= trace.end_to_end_ns);
        assert!(
            trace.end_to_end_ns - reply < 50_000_000,
            "commit lagged the reply by {}ns",
            trace.end_to_end_ns - reply
        );
    }

    // The per-stage histograms folded into StatsReply account for every
    // served row, and the metrics dump agrees with the stats counters.
    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, REQUESTS as u64);
    for (name, stage) in stats.stages.named() {
        assert_eq!(stage.count, REQUESTS as u64, "stage {name} missed rows");
        assert!(stage.max >= stage.p50, "stage {name} summary inconsistent");
    }
    let text = client.metrics_dump().unwrap();
    assert!(text.contains(&format!("serve.requests counter {REQUESTS}")));
    assert!(text.contains("serve.stage.gemm_ns histogram count"));
    assert!(text.contains("trace.dropped counter 0"));
    client.close();
    server.shutdown();
}

#[test]
fn slow_requests_are_always_retained_even_with_sampling_off() {
    // sample_per_sec = 0 turns sampling off; a zero slow threshold makes
    // every request "slow", so the recorder must retain them all, flagged.
    let server = NetServer::bind(
        frozen(22),
        "127.0.0.1:0",
        traced_config(TraceSettings {
            capacity: 64,
            sample_per_sec: 0,
            slow_threshold: Some(Duration::ZERO),
            ..TraceSettings::default()
        }),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect_with(
        addr,
        ClientConfig {
            // A roomy budget: requests carry a deadline so the slow log can
            // report the remaining budget at admission.
            deadline: Some(Duration::from_secs(5)),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    for _ in 0..10 {
        assert!(client.predict(&[0.1; FEATURES]).unwrap() < CLASSES);
    }
    let (_, traces) = client.trace_dump(0).unwrap();
    assert_eq!(traces.len(), 10);
    for trace in &traces {
        assert!(trace.slow, "zero threshold flags every request slow");
        assert!(!trace.sampled, "sampling is off");
        assert!(trace.completed && trace.is_monotonic());
        let remaining = trace
            .deadline_remaining_micros
            .expect("deadline-stamped request records its remaining budget");
        assert!(
            remaining > 0 && remaining <= 5_000_000,
            "remaining budget {remaining}µs out of range"
        );
    }
    client.close();
    server.shutdown();
}

/// Pulls the value of `name counter <n>` out of a metrics dump.
fn counter_value(text: &str, name: &str) -> u64 {
    let prefix = format!("{name} counter ");
    text.lines()
        .find_map(|line| line.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("metrics dump missing {name}:\n{text}"))
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn wire_counters_account_every_frame_and_byte() {
    let server = NetServer::bind(
        frozen(24),
        "127.0.0.1:0",
        traced_config(TraceSettings::disabled()),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for _ in 0..10 {
        assert!(client.predict(&[0.2; FEATURES]).unwrap() < CLASSES);
    }
    let _ = client.stats().unwrap();
    let text = client.metrics_dump().unwrap();

    // Request kinds accumulate on the read path. The metrics_dump request
    // itself is accounted before its reply is rendered, so it shows up too.
    assert_eq!(counter_value(&text, "net.wire.predict.frames"), 10);
    assert_eq!(counter_value(&text, "net.wire.stats.frames"), 1);
    assert_eq!(counter_value(&text, "net.wire.metrics_dump.frames"), 1);
    // Reply kinds accumulate on the write path.
    assert_eq!(counter_value(&text, "net.wire.labels.frames"), 10);
    assert_eq!(counter_value(&text, "net.wire.stats_reply.frames"), 1);
    // Byte counts include the 4-byte length prefix, so every accounted
    // frame contributes strictly more than the prefix alone.
    let predict_bytes = counter_value(&text, "net.wire.predict.bytes");
    assert!(
        predict_bytes > 10 * (4 + FEATURES as u64 * 4),
        "10 predict frames of {FEATURES} f32 features accounted only {predict_bytes} bytes"
    );
    let labels_bytes = counter_value(&text, "net.wire.labels.bytes");
    assert!(labels_bytes > 10 * 4, "labels replies under-accounted");
    // Kinds that never crossed the wire stay at zero.
    assert_eq!(counter_value(&text, "net.wire.shutdown.frames"), 0);
    assert_eq!(counter_value(&text, "net.wire.error.bytes"), 0);
    client.close();
    server.shutdown();
}

#[test]
fn disabled_tracing_serves_and_dumps_empty() {
    let server = NetServer::bind(
        frozen(23),
        "127.0.0.1:0",
        traced_config(TraceSettings::disabled()),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for _ in 0..5 {
        assert!(client.predict(&[0.3; FEATURES]).unwrap() < CLASSES);
    }
    let (dropped, traces) = client.trace_dump(0).unwrap();
    assert_eq!((dropped, traces.len()), (0, 0));
    // The always-on metrics and stage histograms still work.
    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, 5);
    assert_eq!(stats.stages.gemm.count, 5);
    assert!(client
        .metrics_dump()
        .unwrap()
        .contains("serve.requests counter 5"));
    client.close();
    server.shutdown();
}
