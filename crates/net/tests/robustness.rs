//! Overload, deadline, drain, reaping, and restart behavior over a real
//! socket: the server sheds load with typed answers instead of queueing to
//! death, finishes in-flight work on drain, reclaims wedged connection
//! slots, still speaks FF8P version 1, and a retrying client rides through
//! a server death-and-restart on the same port.

use ff_models::small_mlp;
use ff_net::protocol::{decode_frame_versioned, read_frame, write_frame, write_frame_at, Frame};
use ff_net::{
    AdmissionConfig, Client, ClientConfig, ErrorCode, NetConfig, NetError, NetServer, RetryPolicy,
    WireHealthState, DEFAULT_MAX_FRAME_BYTES, MIN_PROTOCOL_VERSION,
};
use ff_serve::{BatchPolicy, FrozenModel, ServeConfig};
use ff_tensor::init;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

const FEATURES: usize = 20;
const CLASSES: usize = 5;

fn frozen(seed: u64) -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(seed);
    FrozenModel::freeze(&small_mlp(FEATURES, &[12], CLASSES, &mut rng), CLASSES).unwrap()
}

fn base_config() -> NetConfig {
    NetConfig {
        conn_threads: 4,
        read_timeout: Duration::from_millis(100),
        serve: ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        ..NetConfig::default()
    }
}

/// Reads one length-prefixed reply without [`read_frame`] so the decoded
/// protocol version stays observable.
fn read_reply_versioned(stream: &mut TcpStream) -> (Frame, u16) {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let mut bytes = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut bytes).unwrap();
    decode_frame_versioned(&bytes).unwrap()
}

#[test]
fn overload_is_answered_with_a_typed_hint_not_a_queue() {
    // Capacity of ONE row, and a batch policy that parks a lone request for
    // 600 ms waiting for batch-mates: while the first request camps in the
    // batcher holding the only slot, a second request must be refused
    // immediately with Overloaded + retry-after — not queued behind it.
    let retry_after = Duration::from_millis(35);
    let config = NetConfig {
        admission: AdmissionConfig {
            max_in_flight_rows: 1,
            retry_after,
            ..AdmissionConfig::default()
        },
        serve: ServeConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch: 32,
                max_wait: Duration::from_millis(600),
            },
            ..ServeConfig::default()
        },
        ..base_config()
    };
    let model = frozen(21);
    let x = init::uniform(&[1, FEATURES], -1.0, 1.0, &mut StdRng::seed_from_u64(3));
    let direct = model.predict_logits(&x).unwrap();
    let server = NetServer::bind(model, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let row: Vec<f32> = x.row(0).to_vec();
    let camper_row = row.clone();
    let camper = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let label = client.predict(&camper_row).unwrap();
        client.close();
        label
    });
    // Give the camper time to occupy the slot, then collide with it.
    std::thread::sleep(Duration::from_millis(150));
    let mut client = Client::connect(addr).unwrap();
    let started = Instant::now();
    match client.predict(&row) {
        Err(NetError::Remote {
            code,
            retry_after: hint,
            ..
        }) => {
            assert_eq!(code, ErrorCode::Overloaded);
            assert!(code.is_retryable(), "Overloaded must invite a retry");
            assert_eq!(hint, Some(retry_after), "hint should echo the config");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(300),
        "overload answer must be immediate, not queued behind the camper"
    );

    // The camper's admitted request still completed, bit-identically.
    assert_eq!(camper.join().unwrap(), direct[0]);
    let stats = client.stats().unwrap();
    assert_eq!(stats.rejected_overload, 1);
    assert_eq!(stats.requests, 1, "only the admitted request was served");
    client.close();
    server.shutdown();
}

#[test]
fn expired_deadlines_are_shed_before_the_gemm() {
    // A 1 ms budget against a batcher that parks lone requests for 300 ms:
    // the deadline expires in the batch queue, so the server must answer
    // DeadlineExceeded without spending a GEMM slot on it.
    let config = NetConfig {
        serve: ServeConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch: 32,
                max_wait: Duration::from_millis(300),
            },
            ..ServeConfig::default()
        },
        ..base_config()
    };
    let server = NetServer::bind(frozen(22), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let doomed = Frame::Predict {
        id: 5,
        deadline_micros: 1_000,
        features: vec![0.5; FEATURES],
    };
    write_frame(&mut stream, &doomed, DEFAULT_MAX_FRAME_BYTES).unwrap();
    match read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).unwrap() {
        Frame::Error { id, code, .. } => {
            assert_eq!(id, 5);
            assert_eq!(code, ErrorCode::DeadlineExceeded);
            assert!(
                !code.is_retryable(),
                "retrying an expired deadline is futile: the budget is gone"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.shed_expired + stats.rejected_deadline,
        1,
        "the doomed request must show up as shed or refused"
    );
    // An unbounded request on the same server still gets served.
    assert!(client.predict(&[0.5; FEATURES]).unwrap() < CLASSES);
    client.close();
    server.shutdown();
}

#[test]
fn drain_finishes_in_flight_work_and_refuses_new_predictions() {
    let config = NetConfig {
        drain_budget: Duration::from_secs(3),
        serve: ServeConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch: 32,
                // Parks the in-flight request long enough for the probes
                // below to observe the Draining window.
                max_wait: Duration::from_millis(600),
            },
            ..ServeConfig::default()
        },
        ..base_config()
    };
    let model = frozen(23);
    let x = init::uniform(&[1, FEATURES], -1.0, 1.0, &mut StdRng::seed_from_u64(9));
    let direct = model.predict_logits(&x).unwrap();
    let server = NetServer::bind(model, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // Connections must exist BEFORE drain starts: draining stops accepting.
    let mut controller = Client::connect(addr).unwrap();
    let mut probe = Client::connect(addr).unwrap();
    probe.health().unwrap(); // force the lazy connect now

    let row: Vec<f32> = x.row(0).to_vec();
    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let label = client.predict(&row).unwrap();
        client.close();
        label
    });
    std::thread::sleep(Duration::from_millis(150));
    controller.shutdown_server().unwrap();
    assert!(server.is_shutting_down());

    // The probe's existing connection sees the Draining health state and a
    // typed, retryable refusal for new prediction work.
    let info = probe.health().unwrap();
    assert_eq!(info.state, WireHealthState::Draining);
    match probe.predict(&[0.5; FEATURES]) {
        Err(NetError::Remote {
            code, retry_after, ..
        }) => {
            assert_eq!(code, ErrorCode::Draining);
            assert!(code.is_retryable(), "another replica may take it");
            assert!(retry_after.is_some(), "hint tells clients when to look");
        }
        other => panic!("expected a Draining refusal, got {other:?}"),
    }

    // The request admitted before drain still completes, bit-identically.
    assert_eq!(in_flight.join().unwrap(), direct[0]);
    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "drain should end as soon as in-flight work finishes, not eat the budget"
    );
    controller.close();
    probe.close();
}

#[test]
fn idle_connections_are_reaped_freeing_their_slot() {
    // One handler thread and a slow-loris client that connects and sends
    // nothing: without reaping, the slot is wedged until the client deigns
    // to speak and every later connection starves behind it.
    let config = NetConfig {
        conn_threads: 1,
        read_timeout: Duration::from_millis(50),
        idle_timeout: Duration::from_millis(250),
        ..base_config()
    };
    let server = NetServer::bind(frozen(24), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let mut loris = TcpStream::connect(addr).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Give the handler time to adopt the idle connection, then let the
    // idle_timeout elapse.
    std::thread::sleep(Duration::from_millis(500));

    // The reaped slot must now serve a well-behaved client promptly.
    let started = Instant::now();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.predict(&[0.25; FEATURES]).unwrap() < CLASSES);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "slow-loris connection starved the pool"
    );
    // And the loris observes its connection closed (EOF), not limbo.
    assert_eq!(loris.read(&mut [0u8; 8]).unwrap(), 0);
    client.close();
    server.shutdown();
}

#[test]
fn version_1_clients_are_still_served() {
    let model = frozen(25);
    let x = init::uniform(&[1, FEATURES], -1.0, 1.0, &mut StdRng::seed_from_u64(4));
    let direct = model.predict_logits(&x).unwrap();
    let server = NetServer::bind(model, "127.0.0.1:0", base_config()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Speak strict version 1: no deadline field on Predict, and the server
    // must answer in version 1 too (a v2 reply would desync old clients).
    let predict = Frame::Predict {
        id: 1,
        deadline_micros: 0,
        features: x.row(0).to_vec(),
    };
    write_frame_at(
        &mut stream,
        &predict,
        MIN_PROTOCOL_VERSION,
        DEFAULT_MAX_FRAME_BYTES,
    )
    .unwrap();
    let (reply, version) = read_reply_versioned(&mut stream);
    assert_eq!(version, MIN_PROTOCOL_VERSION, "reply must match the peer");
    match reply {
        Frame::Labels { id, labels } => {
            assert_eq!(id, 1);
            assert_eq!(labels[0] as usize, direct[0], "v1 answer diverged");
        }
        other => panic!("expected Labels, got {other:?}"),
    }

    // Control frames too: health and stats decode cleanly at version 1.
    write_frame_at(
        &mut stream,
        &Frame::Health { id: 2 },
        MIN_PROTOCOL_VERSION,
        DEFAULT_MAX_FRAME_BYTES,
    )
    .unwrap();
    let (reply, version) = read_reply_versioned(&mut stream);
    assert_eq!(version, MIN_PROTOCOL_VERSION);
    match reply {
        Frame::HealthReply {
            id,
            input_features,
            state,
            ..
        } => {
            assert_eq!(id, 2);
            assert_eq!(input_features as usize, FEATURES);
            // v1 has no state field; decoding fills in the neutral default.
            assert_eq!(state, WireHealthState::Ok);
        }
        other => panic!("expected HealthReply, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn retries_ride_through_a_mid_frame_server_death_and_restart() {
    // A fake server accepts one connection, reads the request, then dies
    // mid-reply: length prefix promising 64 bytes, 10 bytes delivered,
    // connection and listener dropped. A real server then binds the SAME
    // port. The client's seeded retry policy must carry the request through
    // the gap to a correct answer, with no wrong answer surfaced in between.
    let model = frozen(26);
    let x = init::uniform(&[1, FEATURES], -1.0, 1.0, &mut StdRng::seed_from_u64(6));
    let direct = model.predict_logits(&x).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let row: Vec<f32> = x.row(0).to_vec();
    let client_thread = std::thread::spawn(move || {
        let mut client = Client::connect_with(
            addr,
            ClientConfig {
                retry: RetryPolicy {
                    max_attempts: 10,
                    base_backoff: Duration::from_millis(25),
                    max_backoff: Duration::from_millis(400),
                    jitter_seed: 42,
                },
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let label = client.predict(&row).unwrap();
        client.close();
        label
    });

    // Fake-server half: accept, read some request bytes, die mid-reply.
    let (mut victim, _) = listener.accept().unwrap();
    let mut sink = [0u8; 32];
    let _ = victim.read(&mut sink);
    victim.write_all(&64u32.to_le_bytes()).unwrap();
    victim.write_all(&[0xEE; 10]).unwrap();
    victim.flush().unwrap();
    drop(victim);
    drop(listener);

    // Rebind the SAME address with a real server (std listeners set
    // SO_REUSEADDR on Unix, but give the kernel a moment if it needs one).
    let mut rebound = None;
    for _ in 0..100 {
        match NetServer::bind(model.clone(), addr, base_config()) {
            Ok(server) => {
                rebound = Some(server);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let server = rebound.expect("could not rebind the fake server's port");

    assert_eq!(
        client_thread.join().expect("client gave up or panicked"),
        direct[0],
        "the retried answer must match a direct call"
    );
    server.shutdown();
}
