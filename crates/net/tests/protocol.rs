//! `FF8P` loader robustness: the same bar the `FF8S` and `FF8C` fuzz
//! suites set — truncation at every byte offset and random single-byte
//! flips yield typed errors (or a different but valid frame), never a
//! panic, for **every** frame kind.

use ff_net::protocol::{
    decode_frame, decode_frame_versioned, encode_frame, encode_frame_at, read_frame, sample_frames,
};
use ff_net::{NetError, DEFAULT_MAX_FRAME_BYTES, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use proptest::prelude::*;

#[test]
fn every_truncation_of_every_kind_is_a_typed_error() {
    for frame in sample_frames() {
        let bytes = encode_frame(&frame);
        for len in 0..bytes.len() {
            match decode_frame(&bytes[..len]) {
                Err(NetError::Codec(_)) | Err(NetError::Frame { .. }) => {}
                other => panic!("{frame:?}: prefix of {len} bytes gave {other:?}"),
            }
        }
    }
}

#[test]
fn every_truncation_at_every_protocol_version_is_a_typed_error() {
    // The version-2 fields (deadline, retry hint, health state, shed
    // counters) shift every later byte offset, so the truncation sweep must
    // hold for BOTH encodings, not just the current one.
    for version in MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION {
        for frame in sample_frames() {
            let bytes = encode_frame_at(&frame, version);
            for len in 0..bytes.len() {
                match decode_frame(&bytes[..len]) {
                    Err(NetError::Codec(_)) | Err(NetError::Frame { .. }) => {}
                    other => panic!("v{version} {frame:?}: prefix of {len} gave {other:?}"),
                }
            }
        }
    }
}

#[test]
fn every_stream_truncation_is_a_typed_error() {
    // The outer length-prefixed framing layer: cutting the stream anywhere
    // (inside the length prefix or the frame) is Closed or a decode error.
    for frame in sample_frames() {
        let mut wire = Vec::new();
        ff_net::protocol::write_frame(&mut wire, &frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        for len in 0..wire.len() {
            let mut cursor = std::io::Cursor::new(&wire[..len]);
            assert!(
                read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).is_err(),
                "{frame:?}: stream prefix of {len} bytes must not parse"
            );
        }
    }
}

proptest! {
    #[test]
    fn single_byte_flips_never_panic(
        kind_index in 0usize..10,
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let frames = sample_frames();
        let frame = &frames[kind_index % frames.len()];
        let mut bytes = encode_frame(frame);
        let position = ((bytes.len() as f64) * position_fraction) as usize % bytes.len();
        bytes[position] ^= flip;
        match decode_frame(&bytes) {
            // Flips landing in value payloads legitimately decode to a
            // different frame; anything structural must be a typed error.
            Ok(_) | Err(NetError::Codec(_)) | Err(NetError::Frame { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn single_byte_flips_of_old_minor_version_frames_never_panic(
        kind_index in 0usize..10,
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        // Backward compat under corruption: a damaged VERSION-1 frame must
        // be just as safe to decode as a damaged current-version frame.
        let frames = sample_frames();
        let frame = &frames[kind_index % frames.len()];
        let mut bytes = encode_frame_at(frame, MIN_PROTOCOL_VERSION);
        let position = ((bytes.len() as f64) * position_fraction) as usize % bytes.len();
        bytes[position] ^= flip;
        match decode_frame(&bytes) {
            Ok(_) | Err(NetError::Codec(_)) | Err(NetError::Frame { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn old_minor_version_frames_roundtrip_with_neutral_defaults(
        kind_index in 0usize..10,
    ) {
        // A version-1 encoding drops the v2-only fields; decoding it must
        // report version 1, fill the dropped fields with neutral defaults,
        // and re-encode byte-identically (proof nothing else was touched).
        let frames = sample_frames();
        let frame = &frames[kind_index % frames.len()];
        let v1_bytes = encode_frame_at(frame, MIN_PROTOCOL_VERSION);
        let (decoded, version) = decode_frame_versioned(&v1_bytes).unwrap();
        prop_assert_eq!(version, MIN_PROTOCOL_VERSION);
        prop_assert_eq!(&encode_frame_at(&decoded, MIN_PROTOCOL_VERSION), &v1_bytes);

        // The current encoding of the same frame roundtrips losslessly.
        let v2_bytes = encode_frame_at(frame, PROTOCOL_VERSION);
        let (decoded, version) = decode_frame_versioned(&v2_bytes).unwrap();
        prop_assert_eq!(version, PROTOCOL_VERSION);
        prop_assert_eq!(&decoded, frame);
    }

    #[test]
    fn random_bytes_never_panic_the_stream_reader(
        len in 0usize..256,
        seed in 0u64..u64::MAX,
    ) {
        // Arbitrary garbage: must produce SOME result without panicking,
        // with allocations bounded by the frame limit.
        let mut state = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = read_frame(&mut cursor, 4096);
    }
}
