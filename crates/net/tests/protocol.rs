//! `FF8P` loader robustness: the same bar the `FF8S` and `FF8C` fuzz
//! suites set — truncation at every byte offset and random single-byte
//! flips yield typed errors (or a different but valid frame), never a
//! panic, for **every** frame kind.

use ff_net::protocol::{
    decode_frame, decode_frame_meta, decode_frame_versioned, encode_frame, encode_frame_at,
    encode_frame_meta, read_frame, read_frame_meta, sample_frames, write_frame_at,
    write_frame_meta,
};
use ff_net::{
    Frame, FrameMeta, NetError, NetServer, DEFAULT_MAX_FRAME_BYTES, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use proptest::prelude::*;

#[test]
fn every_truncation_of_every_kind_is_a_typed_error() {
    for frame in sample_frames() {
        let bytes = encode_frame(&frame);
        for len in 0..bytes.len() {
            match decode_frame(&bytes[..len]) {
                Err(NetError::Codec(_)) | Err(NetError::Frame { .. }) => {}
                other => panic!("{frame:?}: prefix of {len} bytes gave {other:?}"),
            }
        }
    }
}

#[test]
fn every_truncation_at_every_protocol_version_is_a_typed_error() {
    // The version-2 fields (deadline, retry hint, health state, shed
    // counters) shift every later byte offset, so the truncation sweep must
    // hold for BOTH encodings, not just the current one.
    for version in MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION {
        for frame in sample_frames() {
            let bytes = encode_frame_at(&frame, version);
            for len in 0..bytes.len() {
                match decode_frame(&bytes[..len]) {
                    Err(NetError::Codec(_)) | Err(NetError::Frame { .. }) => {}
                    other => panic!("v{version} {frame:?}: prefix of {len} gave {other:?}"),
                }
            }
        }
    }
}

#[test]
fn every_stream_truncation_is_a_typed_error() {
    // The outer length-prefixed framing layer: cutting the stream anywhere
    // (inside the length prefix or the frame) is Closed or a decode error.
    for frame in sample_frames() {
        let mut wire = Vec::new();
        ff_net::protocol::write_frame(&mut wire, &frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        for len in 0..wire.len() {
            let mut cursor = std::io::Cursor::new(&wire[..len]);
            assert!(
                read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).is_err(),
                "{frame:?}: stream prefix of {len} bytes must not parse"
            );
        }
    }
}

/// The v3 header meta every metadata-fuzz case uses: a non-default model
/// id (both bytes of the flags word populated) and a real token, so the
/// sweeps below actually traverse model-id and auth bytes.
fn fuzz_meta() -> FrameMeta {
    FrameMeta {
        model_id: 0x0201,
        token: Some("tenant-a-secret".to_string()),
    }
}

#[test]
fn every_truncation_of_v3_metadata_frames_is_a_typed_error() {
    // The version sweep above encodes with *default* meta (empty auth
    // record); this sweep re-runs every truncation with the model-id flags
    // word and a populated auth token in the header, which shifts every
    // later offset.
    for frame in sample_frames() {
        let bytes = encode_frame_meta(&frame, PROTOCOL_VERSION, &fuzz_meta());
        for len in 0..bytes.len() {
            match decode_frame_meta(&bytes[..len]) {
                Err(NetError::Codec(_)) | Err(NetError::Frame { .. }) => {}
                other => panic!("{frame:?}: v3 meta prefix of {len} bytes gave {other:?}"),
            }
        }
    }
}

#[test]
fn every_byte_flip_over_model_id_and_auth_fields_is_safe() {
    // Deterministic single-byte flips across the v3 header: magic, version,
    // the model-id flags word, the auth record length and every token byte.
    // Each flip must decode to a typed error or a *valid* frame whose meta
    // simply differs (a flipped model id / token is a different credential,
    // not a crash) — and never to the original token with a mutated byte
    // accepted silently.
    let meta = fuzz_meta();
    let header_span = 8 + 4 + 4 + meta.token.as_ref().unwrap().len() + 4;
    for frame in sample_frames() {
        let bytes = encode_frame_meta(&frame, PROTOCOL_VERSION, &meta);
        for offset in 0..header_span.min(bytes.len()) {
            for flip in [0x01u8, 0x80, 0xA5, 0xFF] {
                let mut corrupted = bytes.clone();
                corrupted[offset] ^= flip;
                match decode_frame_meta(&corrupted) {
                    Ok((decoded_frame, version, decoded_meta)) => {
                        // A surviving decode is internally consistent: the
                        // flip landed in the meta (different model id or
                        // token) or in the payload (different frame) —
                        // re-encoding reproduces the corrupted bytes.
                        assert_eq!(
                            encode_frame_meta(&decoded_frame, version, &decoded_meta),
                            corrupted,
                            "{frame:?}: flip {flip:#x} at {offset} decoded inconsistently"
                        );
                    }
                    Err(NetError::Codec(_)) | Err(NetError::Frame { .. }) => {}
                    Err(other) => {
                        panic!("{frame:?}: flip {flip:#x} at {offset} gave {other:?}")
                    }
                }
            }
        }
    }
}

/// The interop matrix: one version-3 server, clients speaking every
/// supported protocol version. Each client must get its reply at **its
/// own** version with the correct payload — v1/v2 clients keep working
/// unchanged against a v3 server, and the v3 client's reply echoes its
/// model id without leaking the token.
#[test]
fn protocol_version_interop_matrix() {
    use ff_serve::FrozenModel;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let model = FrozenModel::freeze(&ff_models::small_mlp(8, &[6], 3, &mut rng), 3).unwrap();
    let expected = model
        .predict_logits(&ff_tensor::Tensor::from_vec(&[1, 8], vec![0.25; 8]).unwrap())
        .unwrap()[0] as u32;
    let server = NetServer::bind(model, "127.0.0.1:0", ff_net::NetConfig::default()).unwrap();
    let addr = server.local_addr();

    for version in MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();

        // Predict at this version; reply must arrive at the same version.
        let request = Frame::Predict {
            id: 1,
            deadline_micros: 0,
            features: vec![0.25; 8],
        };
        if version >= 3 {
            write_frame_meta(
                &mut stream,
                &request,
                version,
                &FrameMeta::for_model(0),
                DEFAULT_MAX_FRAME_BYTES,
            )
            .unwrap();
        } else {
            write_frame_at(&mut stream, &request, version, DEFAULT_MAX_FRAME_BYTES).unwrap();
        }
        let (reply, reply_version, reply_meta) =
            read_frame_meta(&mut stream, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(
            reply_version, version,
            "reply must speak the client's dialect"
        );
        assert_eq!(reply_meta.token, None, "replies never carry a token");
        assert_eq!(
            reply,
            Frame::Labels {
                id: 1,
                labels: vec![expected]
            },
            "v{version} client got a wrong prediction"
        );

        // Health at this version: pre-v3 clients see no model version (the
        // field defaults to 0 at decode), the v3 client sees the real one.
        write_frame_at(
            &mut stream,
            &Frame::Health { id: 2 },
            version,
            DEFAULT_MAX_FRAME_BYTES,
        )
        .unwrap();
        let (health, health_version, _) =
            read_frame_meta(&mut stream, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(health_version, version);
        match health {
            Frame::HealthReply {
                input_features,
                num_classes,
                model_version,
                ..
            } => {
                assert_eq!((input_features, num_classes), (8, 3));
                assert_eq!(model_version, if version >= 3 { 1 } else { 0 });
            }
            other => panic!("v{version}: expected a health reply, got {other:?}"),
        }

        // Stats at this version: the per-model list is v3-only payload.
        write_frame_at(
            &mut stream,
            &Frame::Stats { id: 3 },
            version,
            DEFAULT_MAX_FRAME_BYTES,
        )
        .unwrap();
        let (stats, stats_version, _) =
            read_frame_meta(&mut stream, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(stats_version, version);
        match stats {
            Frame::StatsReply { stats, .. } => {
                assert!(stats.requests >= 1);
                if version >= 3 {
                    assert_eq!(stats.models.len(), 1, "v3 stats carry the registry");
                    assert_eq!(stats.models[0].requests, stats.requests);
                } else {
                    assert!(stats.models.is_empty(), "per-model stats are v3-only");
                }
            }
            other => panic!("v{version}: expected a stats reply, got {other:?}"),
        }
    }
    server.shutdown();
}

proptest! {
    #[test]
    fn single_byte_flips_never_panic(
        kind_index in 0usize..10,
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let frames = sample_frames();
        let frame = &frames[kind_index % frames.len()];
        let mut bytes = encode_frame(frame);
        let position = ((bytes.len() as f64) * position_fraction) as usize % bytes.len();
        bytes[position] ^= flip;
        match decode_frame(&bytes) {
            // Flips landing in value payloads legitimately decode to a
            // different frame; anything structural must be a typed error.
            Ok(_) | Err(NetError::Codec(_)) | Err(NetError::Frame { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn single_byte_flips_of_old_minor_version_frames_never_panic(
        kind_index in 0usize..10,
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        // Backward compat under corruption: a damaged VERSION-1 frame must
        // be just as safe to decode as a damaged current-version frame.
        let frames = sample_frames();
        let frame = &frames[kind_index % frames.len()];
        let mut bytes = encode_frame_at(frame, MIN_PROTOCOL_VERSION);
        let position = ((bytes.len() as f64) * position_fraction) as usize % bytes.len();
        bytes[position] ^= flip;
        match decode_frame(&bytes) {
            Ok(_) | Err(NetError::Codec(_)) | Err(NetError::Frame { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn old_minor_version_frames_roundtrip_with_neutral_defaults(
        kind_index in 0usize..10,
    ) {
        // A version-1 encoding drops the v2-only fields; decoding it must
        // report version 1, fill the dropped fields with neutral defaults,
        // and re-encode byte-identically (proof nothing else was touched).
        let frames = sample_frames();
        let frame = &frames[kind_index % frames.len()];
        let v1_bytes = encode_frame_at(frame, MIN_PROTOCOL_VERSION);
        let (decoded, version) = decode_frame_versioned(&v1_bytes).unwrap();
        prop_assert_eq!(version, MIN_PROTOCOL_VERSION);
        prop_assert_eq!(&encode_frame_at(&decoded, MIN_PROTOCOL_VERSION), &v1_bytes);

        // The current encoding of the same frame roundtrips losslessly.
        let v2_bytes = encode_frame_at(frame, PROTOCOL_VERSION);
        let (decoded, version) = decode_frame_versioned(&v2_bytes).unwrap();
        prop_assert_eq!(version, PROTOCOL_VERSION);
        prop_assert_eq!(&decoded, frame);
    }

    #[test]
    fn random_bytes_never_panic_the_stream_reader(
        len in 0usize..256,
        seed in 0u64..u64::MAX,
    ) {
        // Arbitrary garbage: must produce SOME result without panicking,
        // with allocations bounded by the frame limit.
        let mut state = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = read_frame(&mut cursor, 4096);
    }
}
