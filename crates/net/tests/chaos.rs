//! Chaos suite: the server survives hostile and broken clients without
//! hanging, leaking connection-pool slots, or producing a wrong (rather
//! than typed-error) answer.
//!
//! Faults are injected by [`ff_net::fault::FaultyStream`] from seeded
//! [`FaultPlan`]s, so every run replays the same fault schedule — a failure
//! here reproduces from its seed alone. Chaos rounds run under a watchdog:
//! "no hang" is an assertion, not a hope.

use ff_models::small_mlp;
use ff_net::fault::{FaultPlan, FaultyStream};
use ff_net::protocol::{encode_frame, read_frame, write_frame, Frame};
use ff_net::{Client, ErrorCode, NetConfig, NetError, NetServer, DEFAULT_MAX_FRAME_BYTES};
use ff_serve::{FrozenModel, ServeConfig, TraceSettings};
use ff_tensor::init;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const FEATURES: usize = 16;
const CLASSES: usize = 4;

fn frozen(seed: u64) -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(seed);
    FrozenModel::freeze(&small_mlp(FEATURES, &[12], CLASSES, &mut rng), CLASSES).unwrap()
}

fn chaos_config() -> NetConfig {
    NetConfig {
        conn_threads: 3,
        read_timeout: Duration::from_millis(50),
        // Short reap so stalled/abandoned chaotic connections free their
        // pool slots within the test's patience.
        idle_timeout: Duration::from_millis(300),
        drain_budget: Duration::from_secs(2),
        serve: ServeConfig {
            workers: 2,
            // Trace every request: the suite asserts that killed, stalled
            // and corrupted connections never leak a live (uncommitted)
            // trace, which only bites if every request carries one.
            trace: TraceSettings {
                sample_per_sec: u32::MAX,
                ..TraceSettings::default()
            },
            ..ServeConfig::default()
        },
        ..NetConfig::default()
    }
}

/// Asserts that every begun trace was committed (no half-stamped trace is
/// still live) once in-flight replies finish, and that everything the
/// flight recorder retained has monotonic stamps.
fn assert_no_trace_leaks(server: &NetServer) {
    let recorder = server.handle().flight_recorder();
    // Commits happen when the last handle drops — reply writers may still
    // be finishing; give them a bounded moment.
    let deadline = Instant::now() + Duration::from_secs(5);
    while recorder.live() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        recorder.live(),
        0,
        "chaos leaked live traces: a faulty connection dropped neither its \
         handles nor its permit"
    );
    for trace in recorder.recent(0) {
        assert!(trace.is_monotonic(), "torn trace committed: {trace:?}");
    }
}

/// Runs `body` on a worker thread and panics if it does not finish within
/// `limit` — the suite's "never hangs" teeth.
fn with_watchdog<T: Send + 'static>(
    limit: Duration,
    body: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(body());
    });
    match rx.recv_timeout(limit) {
        Ok(value) => {
            worker.join().expect("chaos worker panicked");
            value
        }
        // The sender dropped without sending: the worker panicked —
        // propagate its payload instead of mislabeling it a hang.
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => match worker.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(()) => unreachable!("worker finished without sending"),
        },
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("chaos run exceeded the {limit:?} watchdog: server hang")
        }
    }
}

/// One chaotic session against `addr`: speaks real FF8P through a faulty
/// transport, returns the labels it managed to obtain (id → label).
fn chaotic_session(
    addr: std::net::SocketAddr,
    plan: FaultPlan,
    rows: &[Vec<f32>],
) -> Vec<(u64, u32)> {
    let Ok(stream) = TcpStream::connect(addr) else {
        return Vec::new();
    };
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(400)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_millis(400)))
        .unwrap();
    let mut faulty = FaultyStream::new(stream, plan);
    let mut answered = Vec::new();
    for (index, row) in rows.iter().enumerate() {
        let id = index as u64 + 1;
        let frame = Frame::Predict {
            id,
            deadline_micros: 0,
            features: row.clone(),
        };
        if write_frame(&mut faulty, &frame, DEFAULT_MAX_FRAME_BYTES).is_err() {
            break; // injected cut / stall-timeout: abandon the session
        }
        match read_frame(&mut faulty, DEFAULT_MAX_FRAME_BYTES) {
            Ok(Frame::Labels {
                id: reply_id,
                labels,
            }) if labels.len() == 1 => {
                answered.push((reply_id, labels[0]));
            }
            Ok(_) | Err(_) => break, // typed error or corrupted reply: bail
        }
    }
    answered
}

#[test]
fn seeded_chaos_never_hangs_leaks_slots_or_corrupts_answers() {
    let model = frozen(11);
    let x = init::uniform(&[8, FEATURES], -1.0, 1.0, &mut StdRng::seed_from_u64(2));
    let direct = model.predict_logits(&x).unwrap();
    let rows: Vec<Vec<f32>> = (0..8).map(|r| x.row(r).to_vec()).collect();

    let server = NetServer::bind(model, "127.0.0.1:0", chaos_config()).unwrap();
    let addr = server.local_addr();

    // Phase 1: three seeded waves of chaotic sessions, concurrently per
    // wave: fragmented-but-honest traffic, mid-stream cuts, and reply
    // corruption. Sessions may fail; the invariant is that every label any
    // of them DID receive matches the direct model answer for its row.
    let answered = with_watchdog(Duration::from_secs(30), move || {
        let mut answered = Vec::new();
        for round in 0..3u64 {
            std::thread::scope(|scope| {
                let mut sessions = Vec::new();
                for lane in 0..4u64 {
                    let seed = round * 100 + lane;
                    // Lane 2 corrupts *replies* client-side; FF8P carries no
                    // checksum, so a payload flip can decode to a valid but
                    // wrong label — that lane exercises robustness only and
                    // its answers are excluded from the integrity check.
                    let (plan, trusted) = match lane {
                        0 => (FaultPlan::rough_network(seed), true),
                        1 => (
                            FaultPlan {
                                cut_at_op: Some(3 + round),
                                ..FaultPlan::rough_network(seed)
                            },
                            true,
                        ),
                        2 => (
                            FaultPlan {
                                corrupt_read: 0.4,
                                ..FaultPlan::rough_network(seed)
                            },
                            false,
                        ),
                        _ => (
                            FaultPlan {
                                stall: 0.5,
                                stall_for: Duration::from_millis(20),
                                cut_at_op: Some(9),
                                ..FaultPlan::benign(seed)
                            },
                            true,
                        ),
                    };
                    let rows = &rows;
                    sessions.push((
                        trusted,
                        scope.spawn(move || chaotic_session(addr, plan, rows)),
                    ));
                }
                for (trusted, session) in sessions {
                    let got = session.join().expect("chaotic session panicked");
                    if trusted {
                        answered.extend(got);
                    }
                }
            });
        }
        answered
    });
    // Every answer an honest-transport session received must be the exact
    // label a direct in-memory call produces for that row.
    assert!(!answered.is_empty(), "no chaotic session got any answer");
    for (id, label) in &answered {
        let row = (*id - 1) as usize;
        assert_eq!(*label as usize, direct[row], "row {row}: wrong answer");
    }

    // Phase 2: raw garbage streams — not even FF8P — must be answered with
    // a typed error or a close, never a hang.
    with_watchdog(Duration::from_secs(10), move || {
        for seed in 0..4u64 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let garbage: Vec<u8> = (0..256)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 56) as u8
                })
                .collect();
            let _ = stream.write_all(&garbage);
            let _ = stream.flush();
            // Read whatever comes back (an error frame or EOF); both fine.
            let _ = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES);
        }
    });

    // Phase 3: no leaked pool slots — after all that, as many *clean*
    // concurrent clients as there are handler threads must all be served
    // with bit-exact answers (abandoned chaotic connections were reaped).
    let rows: Vec<Vec<f32>> = (0..8).map(|r| x.row(r).to_vec()).collect();
    let direct_clone = direct.clone();
    with_watchdog(Duration::from_secs(20), move || {
        std::thread::scope(|scope| {
            for _ in 0..chaos_config().conn_threads {
                let rows = &rows;
                let direct = &direct_clone;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("clean connect after chaos");
                    for (row, expected) in rows.iter().zip(direct.iter()) {
                        assert_eq!(client.predict(row).unwrap(), *expected);
                    }
                    client.close();
                });
            }
        });
    });

    assert_no_trace_leaks(&server);
    server.shutdown();
}

#[test]
fn half_frames_then_death_free_their_slot() {
    // A client that sends a length prefix promising a frame, delivers half
    // of it, and dies must not pin a pool slot past the reap window.
    let server = NetServer::bind(frozen(12), "127.0.0.1:0", chaos_config()).unwrap();
    let addr = server.local_addr();

    with_watchdog(Duration::from_secs(15), move || {
        let frame_bytes = encode_frame(&Frame::Predict {
            id: 1,
            deadline_micros: 0,
            features: vec![0.5; FEATURES],
        });
        // Wedge every pool slot with a half-frame, then hang up abruptly on
        // some and stay silent on others.
        let mut wedged = Vec::new();
        for index in 0..chaos_config().conn_threads {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(&(frame_bytes.len() as u32).to_le_bytes())
                .unwrap();
            stream
                .write_all(&frame_bytes[..frame_bytes.len() / 2])
                .unwrap();
            stream.flush().unwrap();
            if index % 2 == 0 {
                drop(stream); // mid-frame death: EOF for the server
            } else {
                wedged.push(stream); // mid-frame stall: reap must fire
            }
        }
        // EOF-killed slots free immediately; stalled ones after
        // idle_timeout. A clean client must then be served.
        let mut client = Client::connect(addr).expect("connect after wedging");
        let label = client
            .predict(&[0.25; FEATURES])
            .expect("served after reap");
        assert!(label < CLASSES);
        client.close();
        drop(wedged);
    });

    assert_no_trace_leaks(&server);
    server.shutdown();
}

#[test]
fn corrupted_requests_get_typed_errors_not_crashes() {
    // Flip one byte in an otherwise-valid request frame at every offset in
    // the header/metadata region: the server must answer each with a typed
    // Protocol/FrameTooLarge error (or close on the undecodable ones), and
    // must still serve a clean request afterwards.
    let server = NetServer::bind(frozen(13), "127.0.0.1:0", chaos_config()).unwrap();
    let addr = server.local_addr();

    with_watchdog(Duration::from_secs(30), move || {
        let frame_bytes = encode_frame(&Frame::Predict {
            id: 7,
            deadline_micros: 0,
            features: vec![0.5; FEATURES],
        });
        for offset in 0..32usize.min(frame_bytes.len()) {
            let mut corrupted = frame_bytes.clone();
            corrupted[offset] ^= 0xA5;
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            stream
                .write_all(&(corrupted.len() as u32).to_le_bytes())
                .unwrap();
            stream.write_all(&corrupted).unwrap();
            stream.flush().unwrap();
            match read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES) {
                // A flip in the feature payload still decodes: a real label.
                Ok(Frame::Labels { .. }) => {}
                // Structural flips: typed error frame. (A flip in the
                // deadline field arrives already-expired; a flip in the
                // width metadata is a bad request; a flip in the v3 flags
                // word addresses a model that is not registered.)
                Ok(Frame::Error { code, .. }) => assert!(
                    matches!(
                        code,
                        ErrorCode::Protocol
                            | ErrorCode::FrameTooLarge
                            | ErrorCode::BadRequest
                            | ErrorCode::DeadlineExceeded
                            | ErrorCode::UnknownModel
                    ),
                    "offset {offset}: unexpected code {code:?}"
                ),
                Ok(other) => panic!("offset {offset}: unexpected reply {other:?}"),
                // Or the server closed after answering/mid-handshake.
                Err(NetError::Closed | NetError::Timeout | NetError::FrameTooLarge { .. }) => {}
                Err(other) => panic!("offset {offset}: unexpected error {other:?}"),
            }
        }
        // The server is still healthy.
        let mut client = Client::connect(addr).unwrap();
        assert!(client.predict(&[0.1; FEATURES]).unwrap() < CLASSES);
        client.close();
    });

    assert_no_trace_leaks(&server);
    server.shutdown();
}
