//! End-to-end wire serving: predictions answered over TCP by concurrent
//! clients are **bit-identical** to direct in-memory [`FrozenModel`] calls,
//! and every abuse path (wrong width, oversized frames, post-shutdown
//! connects) fails with a typed error.

use ff_models::small_mlp;
use ff_net::{Client, ClientConfig, ErrorCode, NetConfig, NetError, NetServer, WireMode};
use ff_serve::{FrozenModel, ServeConfig, ServeMode};
use ff_tensor::init;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const FEATURES: usize = 24;
const CLASSES: usize = 6;

fn frozen(seed: u64) -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(seed);
    FrozenModel::freeze(&small_mlp(FEATURES, &[16], CLASSES, &mut rng), CLASSES).unwrap()
}

fn config(mode: ServeMode) -> NetConfig {
    NetConfig {
        conn_threads: 4,
        read_timeout: Duration::from_millis(100),
        serve: ServeConfig {
            workers: 2,
            mode,
            ..ServeConfig::default()
        },
        ..NetConfig::default()
    }
}

#[test]
fn concurrent_network_predictions_are_bit_identical_to_direct_calls() {
    for mode in [ServeMode::Logits, ServeMode::Goodness] {
        let model = frozen(3);
        let x = init::uniform(&[40, FEATURES], -1.0, 1.0, &mut StdRng::seed_from_u64(7));
        let direct = match mode {
            ServeMode::Logits => model.predict_logits(&x).unwrap(),
            ServeMode::Goodness => model.predict_goodness(&x).unwrap(),
        };
        let server = NetServer::bind(model, "127.0.0.1:0", config(mode)).unwrap();
        let addr = server.local_addr();

        // 4 concurrent clients, each mixing all three request shapes over
        // its own slice of the 40 rows.
        let mut served = vec![0usize; 40];
        std::thread::scope(|scope| {
            for (client_index, chunk) in served.chunks_mut(10).enumerate() {
                let x = &x;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let base = client_index * 10;
                    // Rows 0..4 individually, 4..7 pipelined, 7..10 batched.
                    for (offset, slot) in chunk.iter_mut().enumerate().take(4) {
                        *slot = client.predict(x.row(base + offset)).unwrap();
                    }
                    let pipelined = client
                        .predict_pipelined((4..7).map(|offset| x.row(base + offset)))
                        .unwrap();
                    chunk[4..7].copy_from_slice(&pipelined);
                    let flat: Vec<f32> = (7..10)
                        .flat_map(|offset| x.row(base + offset).to_vec())
                        .collect();
                    let batched = client.predict_batch(FEATURES, &flat).unwrap();
                    chunk[7..10].copy_from_slice(&batched);
                    client.close();
                });
            }
        });
        assert_eq!(served, direct, "{mode:?}: network answers diverged");

        // The stats endpoint saw every row.
        let mut client = Client::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.requests, 40);
        assert_eq!(stats.latency.count, 40);
        let info = client.health().unwrap();
        assert_eq!(info.input_features, FEATURES);
        assert_eq!(info.num_classes, CLASSES);
        assert_eq!(
            info.mode,
            match mode {
                ServeMode::Logits => WireMode::Logits,
                ServeMode::Goodness => WireMode::Goodness,
            }
        );
        client.close();
        server.shutdown();
    }
}

#[test]
fn wrong_width_request_is_a_typed_remote_error() {
    let server = NetServer::bind(frozen(4), "127.0.0.1:0", config(ServeMode::Logits)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.predict(&[0.0; FEATURES + 1]) {
        Err(NetError::Remote { code, message, .. }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("features"), "{message}");
        }
        other => panic!("expected a BadRequest remote error, got {other:?}"),
    }
    // The connection survives a remote error: the next request succeeds.
    assert!(client.predict(&[0.0; FEATURES]).unwrap() < CLASSES);
    client.close();
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_on_both_sides() {
    let tight = NetConfig {
        max_frame_bytes: 256,
        ..config(ServeMode::Logits)
    };
    let server = NetServer::bind(frozen(5), "127.0.0.1:0", tight).unwrap();

    // Client-side guard: the frame never leaves the process.
    let mut client = Client::connect_with(
        server.local_addr(),
        ClientConfig {
            max_frame_bytes: 256,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert!(matches!(
        client.predict_batch(FEATURES, &vec![0.0; FEATURES * 64]),
        Err(NetError::FrameTooLarge { .. })
    ));
    // Small requests still fit.
    assert!(client.predict(&[0.0; FEATURES]).is_ok());

    // Server-side guard: a permissive client sends a giant frame; the
    // server answers with a typed error frame and closes the connection.
    let mut permissive = Client::connect(server.local_addr()).unwrap();
    match permissive.predict_batch(FEATURES, &vec![0.0; FEATURES * 64]) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::FrameTooLarge),
        other => panic!("expected a FrameTooLarge remote error, got {other:?}"),
    }
    client.close();
    permissive.close();
    server.shutdown();
}

#[test]
fn client_reconnects_transparently() {
    let server = NetServer::bind(frozen(6), "127.0.0.1:0", config(ServeMode::Logits)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let first = client.predict(&[0.5; FEATURES]).unwrap();
    // Sever the connection; the next call dials again on its own.
    client.close();
    let second = client.predict(&[0.5; FEATURES]).unwrap();
    assert_eq!(first, second, "same input, same model, same answer");
    client.reconnect().unwrap();
    assert_eq!(client.predict(&[0.5; FEATURES]).unwrap(), first);
    client.close();
    server.shutdown();
}

#[test]
fn shutdown_interrupts_a_busy_connection_between_frames() {
    // A connection streaming requests back-to-back never hits a read
    // timeout, so shutdown must be observed *between* frames — with the
    // long timeout below, a regression here makes `server.shutdown()`
    // block for seconds instead of milliseconds.
    let long_poll = NetConfig {
        read_timeout: Duration::from_secs(5),
        ..config(ServeMode::Logits)
    };
    let server = NetServer::bind(frozen(8), "127.0.0.1:0", long_poll).unwrap();
    let addr = server.local_addr();
    let busy = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let mut answered = 0u64;
        // Hammer until the server goes away.
        while client.predict(&[0.25; FEATURES]).is_ok() {
            answered += 1;
        }
        answered
    });
    // Let the busy client get going, then stop the server over the wire.
    std::thread::sleep(Duration::from_millis(100));
    let mut controller = Client::connect(addr).unwrap();
    controller.shutdown_server().unwrap();
    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "shutdown waited on a busy connection's read timeout"
    );
    let answered = busy.join().unwrap();
    assert!(answered > 0, "busy client never got served");
}

#[test]
fn shutdown_frame_stops_the_server() {
    // A unique feature width identifies THIS server: once it shuts down,
    // its ephemeral port may be recycled by a sibling test's server, so
    // "connect fails" alone would be racy — probe the identity instead.
    let unique_features = 17usize;
    let mut rng = StdRng::seed_from_u64(7);
    let model = FrozenModel::freeze(&small_mlp(unique_features, &[8], 4, &mut rng), 4).unwrap();
    let server = NetServer::bind(model, "127.0.0.1:0", config(ServeMode::Logits)).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.predict(&[0.0; 17]).is_ok());
    client.shutdown_server().unwrap();
    assert!(server.is_shutting_down());
    server.shutdown();
    // The listener is gone: a fresh connect fails, or — if the port was
    // already recycled — reaches a *different* server.
    match Client::connect(addr).and_then(|mut c| c.health()) {
        Err(_) => {}
        Ok(info) => assert_ne!(
            info.input_features, unique_features,
            "server kept serving after shutdown"
        ),
    }
}
