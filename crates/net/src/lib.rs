//! # ff-net
//!
//! The TCP network front-end that turns the in-process INT8 inference
//! engine ([`ff_serve::Server`]) into a real network service — std-only, no
//! async runtime, matching the workspace's dependency-free edge-deployment
//! stance.
//!
//! Layers:
//!
//! 1. **Protocol** ([`protocol`]) — the versioned, length-prefixed `FF8P`
//!    binary wire format (Predict / PredictBatch / Stats / Health /
//!    Shutdown requests, typed replies and error frames; version 2 adds
//!    per-request deadline budgets, retry-after hints, drain state and
//!    shed counters; version 3 adds per-frame model addressing and auth
//!    tokens, with version-1/-2 peers still interoperating), built on the
//!    shared [`ff_codec`] machinery with the same panic-free
//!    truncation/byte-flip hardening as the `FF8S` and `FF8C` loaders.
//! 2. **Server** ([`NetServer`]) — accept loop + bounded connection thread
//!    pool + per-connection framed codec with read/write timeouts,
//!    max-frame-size limits, idle-connection reaping, a bounded
//!    [`AdmissionGate`] that load-sheds overload with typed `Overloaded` /
//!    `DeadlineExceeded` replies, and two-phase graceful drain. Every
//!    admitted prediction funnels into the existing micro-batching engine,
//!    so rows from different connections coalesce into shared GEMM batches
//!    and answers stay **bit-identical** to direct
//!    [`ff_serve::FrozenModel`] calls (per-row quantization). A server can
//!    front a whole [`ff_serve::ModelRegistry`]
//!    ([`NetServer::bind_registry`]): requests route by the model id in
//!    their v3 header, models hot-swap under live traffic, and bearer-token
//!    auth with per-model ACLs ([`AuthPolicy`]) guards predictions.
//! 3. **Client** ([`Client`]) — blocking connect/reconnect,
//!    single-prediction and one-frame-batch calls, pipelined request waves
//!    that collapse N round-trips into one, deadline stamping, model
//!    selection and auth tokens ([`ClientConfig::model`] /
//!    [`ClientConfig::token`]), and opt-in seeded-backoff retries
//!    ([`RetryPolicy`]) for idempotent requests.
//! 4. **Fault injection** ([`fault`]) — a deterministic, seeded faulty
//!    transport wrapper for chaos tests: partial I/O, stalls, mid-frame
//!    resets and garbage injection from a reproducible [`fault::FaultPlan`].
//!
//! # Examples
//!
//! Freeze a model, serve it over TCP on an ephemeral port, and classify
//! from a client — in one process for the doc-test, two in real life:
//!
//! ```
//! use ff_models::small_mlp;
//! use ff_net::{Client, NetConfig, NetServer};
//! use ff_serve::FrozenModel;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = FrozenModel::freeze(&small_mlp(20, &[16], 4, &mut rng), 4)?;
//! let server = NetServer::bind(model, "127.0.0.1:0", NetConfig::default())?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! let info = client.health()?;
//! assert_eq!(info.input_features, 20);
//!
//! // One call, one frame, many rows — or pipeline single predictions.
//! let rows = vec![vec![0.25f32; 20]; 3];
//! let labels = client.predict_batch(20, &rows.concat())?;
//! assert_eq!(labels.len(), 3);
//! let pipelined = client.predict_pipelined(rows.iter().map(Vec::as_slice))?;
//! assert_eq!(pipelined, labels);
//!
//! println!("served: {}", client.stats()?.requests);
//! client.close();
//! server.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! Deadlines and retries are plain configuration:
//!
//! ```no_run
//! use ff_net::{Client, ClientConfig, RetryPolicy};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut client = Client::connect_with(
//!     "127.0.0.1:9000",
//!     ClientConfig {
//!         deadline: Some(Duration::from_millis(50)),
//!         retry: RetryPolicy::standard(42),
//!         ..ClientConfig::default()
//!     },
//! )?;
//! let label = client.predict(&[0.5; 20])?;
//! # let _ = label;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod auth;
mod client;
mod error;
pub mod fault;
pub mod protocol;
mod retry;
mod server;

pub use admission::{AdmissionConfig, AdmissionGate, AdmitError, OverloadPolicy, Permit};
pub use auth::{AuthPolicy, AuthToken};
pub use client::{Client, ClientConfig, ServerInfo};
pub use error::{ErrorCode, NetError};
pub use protocol::{
    Frame, FrameMeta, WireHealthState, WireMode, WireModelStats, WireStats,
    DEFAULT_MAX_FRAME_BYTES, MAGIC, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use retry::RetryPolicy;
pub use server::{NetConfig, NetServer};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetError>;
