//! Bearer-token authentication with per-model ACLs for the `FF8P` server.
//!
//! # Threat model
//!
//! The serving port moves from "trusted network only" to "any peer that
//! can complete a TCP handshake": every prediction request must present a
//! token the operator configured, and a token may be scoped to a subset of
//! registry models (multi-tenant boxes hand each tenant a token for *its*
//! models only). Two deliberate carve-outs:
//!
//! - **Stats and Health stay open.** They carry no tenant data and are
//!   what load balancers and dashboards poll; locking them out of an
//!   otherwise-misconfigured fleet hurts more than it protects.
//! - **Shutdown requires a valid token** (any token — it is not a
//!   per-model operation).
//!
//! Token comparison is **constant-time** over the padded maximum length,
//! so response timing leaks neither how many prefix bytes matched nor
//! which configured token was closest. Error replies carry the typed
//! [`crate::ErrorCode::Unauthorized`] and never echo the presented token.
//! An empty policy ([`AuthPolicy::default`]) keeps the pre-v3 behavior:
//! everything is open, including requests from v1/v2 clients that cannot
//! send tokens at all.

use crate::protocol::MAX_AUTH_TOKEN_LEN;

/// One configured credential: a shared secret, optionally scoped to a set
/// of registry model ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthToken {
    secret: String,
    /// `None` = valid for every model; `Some(ids)` = valid only for these.
    models: Option<Vec<u16>>,
}

impl AuthToken {
    /// A token valid for **every** model (and for shutdown).
    pub fn new(secret: &str) -> Self {
        AuthToken {
            secret: secret.to_string(),
            models: None,
        }
    }

    /// A token valid only for the given model ids (per-tenant ACL). It
    /// still authenticates for non-model operations like shutdown.
    pub fn for_models(secret: &str, models: &[u16]) -> Self {
        AuthToken {
            secret: secret.to_string(),
            models: Some(models.to_vec()),
        }
    }

    fn allows_model(&self, model_id: u16) -> bool {
        match &self.models {
            None => true,
            Some(ids) => ids.contains(&model_id),
        }
    }
}

/// The server's token list. [`AuthPolicy::default`] is **open**: no tokens
/// configured means no authentication required, which is what keeps v1/v2
/// clients (who cannot send tokens) working against servers that have not
/// opted into auth.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuthPolicy {
    tokens: Vec<AuthToken>,
}

impl AuthPolicy {
    /// An explicitly open policy (same as [`AuthPolicy::default`]).
    pub fn open() -> Self {
        AuthPolicy::default()
    }

    /// A policy requiring one of `tokens` on every prediction request.
    pub fn with_tokens(tokens: Vec<AuthToken>) -> Self {
        AuthPolicy { tokens }
    }

    /// `true` when no tokens are configured and everything is allowed.
    pub fn is_open(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Does `token` match **any** configured secret? (The model-agnostic
    /// check, used for shutdown.) Scans the whole list unconditionally so
    /// the timing does not reveal which entry matched.
    pub fn authenticate(&self, token: Option<&str>) -> bool {
        if self.is_open() {
            return true;
        }
        let presented = token.unwrap_or("");
        let mut ok = false;
        for candidate in &self.tokens {
            ok |= constant_time_eq(presented.as_bytes(), candidate.secret.as_bytes());
        }
        ok
    }

    /// Does `token` match a configured secret whose ACL covers `model_id`?
    /// (The per-request check for Predict/PredictBatch.)
    pub fn authorize(&self, token: Option<&str>, model_id: u16) -> bool {
        if self.is_open() {
            return true;
        }
        let presented = token.unwrap_or("");
        let mut ok = false;
        for candidate in &self.tokens {
            ok |= constant_time_eq(presented.as_bytes(), candidate.secret.as_bytes())
                & candidate.allows_model(model_id);
        }
        ok
    }
}

/// Compares two byte strings in time independent of their contents and of
/// where the first difference sits.
///
/// Both inputs are scanned over the padded maximum token length
/// ([`MAX_AUTH_TOKEN_LEN`]), accumulating differences (including the
/// length difference) into one OR-fold that is inspected only once at the
/// end — no early exit, no data-dependent branch.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..MAX_AUTH_TOKEN_LEN.max(a.len()).max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_policy_allows_everything() {
        let policy = AuthPolicy::open();
        assert!(policy.is_open());
        assert!(policy.authenticate(None));
        assert!(policy.authenticate(Some("anything")));
        assert!(policy.authorize(None, 0));
        assert!(policy.authorize(Some("junk"), 42));
    }

    #[test]
    fn tokens_authenticate_and_scope_to_models() {
        let policy = AuthPolicy::with_tokens(vec![
            AuthToken::new("admin-secret"),
            AuthToken::for_models("tenant-a", &[1, 2]),
        ]);
        assert!(!policy.is_open());
        // Missing/wrong tokens fail everywhere.
        assert!(!policy.authenticate(None));
        assert!(!policy.authenticate(Some("nope")));
        assert!(!policy.authorize(None, 1));
        assert!(!policy.authorize(Some("admin-secre"), 1)); // prefix
        assert!(!policy.authorize(Some("admin-secret2"), 1)); // extension
                                                              // The unscoped token reaches every model.
        assert!(policy.authorize(Some("admin-secret"), 0));
        assert!(policy.authorize(Some("admin-secret"), 7));
        // The scoped token reaches only its ACL.
        assert!(policy.authorize(Some("tenant-a"), 1));
        assert!(policy.authorize(Some("tenant-a"), 2));
        assert!(!policy.authorize(Some("tenant-a"), 0));
        // But it still authenticates (shutdown path).
        assert!(policy.authenticate(Some("tenant-a")));
    }

    #[test]
    fn constant_time_eq_agrees_with_plain_equality() {
        let cases: &[(&str, &str)] = &[
            ("", ""),
            ("a", "a"),
            ("a", "b"),
            ("a", ""),
            ("", "a"),
            ("secret", "secret"),
            ("secret", "secres"),
            ("secret", "secrets"),
            ("secret", "Secret"),
            ("aaaaaaaaaaaaaaaa", "aaaaaaaaaaaaaaaa"),
        ];
        for (a, b) in cases {
            assert_eq!(
                constant_time_eq(a.as_bytes(), b.as_bytes()),
                a == b,
                "{a:?} vs {b:?}"
            );
        }
        // Longer than the padded bound still compares correctly.
        let long_a = "x".repeat(MAX_AUTH_TOKEN_LEN + 10);
        let mut long_b = long_a.clone();
        assert!(constant_time_eq(long_a.as_bytes(), long_b.as_bytes()));
        long_b.replace_range(long_b.len() - 1.., "y");
        assert!(!constant_time_eq(long_a.as_bytes(), long_b.as_bytes()));
    }
}
