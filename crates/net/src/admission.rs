//! Bounded admission control for prediction work.
//!
//! The micro-batcher's request queue is unbounded: with no gate in front of
//! it, offered load beyond GEMM capacity grows the queue without limit and
//! every request eventually times out — the server is "up" but useless
//! (congestive collapse). The [`AdmissionGate`] bounds how much prediction
//! work may be in flight at once, measured in **rows** (a 512-row batch
//! costs 512× a single predict), and refuses the excess *immediately* with
//! a typed [`ErrorCode::Overloaded`](crate::ErrorCode::Overloaded) reply
//! and a retry-after hint. Under overload the server keeps answering fast —
//! mostly "try later", but every admitted request still meets its deadline.
//!
//! Control frames (Stats / Health / Shutdown) bypass the gate; they cost
//! microseconds and must keep working during overload, or operators go
//! blind exactly when they need visibility.
//!
//! A slot is held from admission until the reply is written
//! ([`Permit`] drop), so the bound covers queued *and* executing work.
//! Requests whose deadline already expired on arrival are refused without
//! occupying a slot at all.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What the server does when the admission queue is full and another
/// prediction request arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Refuse the new request (first-come-first-served). Predictable and
    /// fair; the default.
    #[default]
    RejectNew,
    /// First drop bookkeeping for queued requests whose deadline has
    /// already expired — the batcher will shed them before the GEMM anyway,
    /// so their slots are dead weight — then admit the new request if room
    /// opened up, else refuse it. Favors requests that can still meet their
    /// deadline over ones that cannot.
    ShedExpired,
}

/// Admission-gate sizing and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Upper bound on prediction rows admitted but not yet replied to.
    /// Sized like a latency budget: `capacity ≈ target_p99 × rows_per_sec`.
    pub max_in_flight_rows: usize,
    /// Full-queue behavior.
    pub policy: OverloadPolicy,
    /// Retry-after hint carried by `Overloaded` replies.
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight_rows: 4096,
            policy: OverloadPolicy::RejectNew,
            retry_after: Duration::from_millis(20),
        }
    }
}

/// Why a request was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// In-flight work is at capacity; retry after the hint.
    Overloaded {
        /// The configured retry-after hint.
        retry_after: Duration,
    },
    /// The request's deadline had already expired on arrival.
    DeadlineExpired,
}

/// One admitted request's bookkeeping entry. Shared between the gate's
/// queue and the [`Permit`] so release needs no back-pointer to the gate.
#[derive(Debug)]
struct Entry {
    rows: usize,
    deadline: Option<Instant>,
    released: AtomicBool,
}

#[derive(Debug, Default)]
struct State {
    queue: VecDeque<Arc<Entry>>,
    in_flight_rows: usize,
}

impl State {
    /// Drops bookkeeping for released entries, returning their rows to the
    /// budget. Amortized O(1) per admitted request.
    fn sweep_released(&mut self) {
        let rows = &mut self.in_flight_rows;
        self.queue.retain(|entry| {
            if entry.released.load(Ordering::Acquire) {
                *rows -= entry.rows;
                false
            } else {
                true
            }
        });
    }

    /// Drops bookkeeping for entries whose deadline has expired (the
    /// batcher sheds those before the GEMM, so their slots are dead
    /// weight). Used by [`OverloadPolicy::ShedExpired`].
    fn shed_expired(&mut self, now: Instant) -> usize {
        let rows = &mut self.in_flight_rows;
        let before = self.queue.len();
        self.queue.retain(|entry| {
            if entry.deadline.is_some_and(|deadline| now > deadline) {
                *rows -= entry.rows;
                false
            } else {
                true
            }
        });
        before - self.queue.len()
    }
}

/// Bounded gate in front of the micro-batcher; see the module docs.
/// Cheap to clone — clones share one budget.
#[derive(Debug, Clone, Default)]
pub struct AdmissionGate {
    config: AdmissionConfig,
    state: Arc<Mutex<State>>,
}

impl AdmissionGate {
    /// Creates a gate with the given sizing and policy.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionGate {
            config,
            state: Arc::new(Mutex::new(State::default())),
        }
    }

    /// The gate's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Requests admission for `rows` rows of prediction work with an
    /// optional deadline. On success the returned [`Permit`] holds the
    /// rows until dropped.
    ///
    /// # Errors
    ///
    /// [`AdmitError::DeadlineExpired`] when `deadline` has already passed,
    /// and [`AdmitError::Overloaded`] when the budget is exhausted (after
    /// policy-dependent eviction of expired bookkeeping).
    pub fn try_admit(
        &self,
        rows: usize,
        deadline: Option<Instant>,
    ) -> std::result::Result<Permit, AdmitError> {
        let now = Instant::now();
        if deadline.is_some_and(|deadline| now > deadline) {
            return Err(AdmitError::DeadlineExpired);
        }
        let mut state = self.state.lock().expect("admission gate lock poisoned");
        state.sweep_released();
        if state.in_flight_rows + rows > self.config.max_in_flight_rows
            && self.config.policy == OverloadPolicy::ShedExpired
        {
            state.shed_expired(now);
        }
        // A single oversized batch (rows > capacity) is still admitted when
        // the gate is idle — refusing it forever would deadlock well-formed
        // clients; the frame-size limit bounds the worst case.
        if state.in_flight_rows + rows > self.config.max_in_flight_rows && state.in_flight_rows > 0
        {
            return Err(AdmitError::Overloaded {
                retry_after: self.config.retry_after,
            });
        }
        let entry = Arc::new(Entry {
            rows,
            deadline,
            released: AtomicBool::new(false),
        });
        state.in_flight_rows += rows;
        state.queue.push_back(Arc::clone(&entry));
        Ok(Permit { entry })
    }

    /// Rows currently admitted and unreleased (sweeps first). Zero means
    /// every admitted request has been replied to — the drain condition.
    pub fn in_flight_rows(&self) -> usize {
        let mut state = self.state.lock().expect("admission gate lock poisoned");
        state.sweep_released();
        state.in_flight_rows
    }
}

/// An admitted request's slot. Dropping it (after the reply is written, or
/// on any error path) returns the rows to the gate's budget; releasing is
/// infallible and never blocks.
#[derive(Debug)]
pub struct Permit {
    entry: Arc<Entry>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.entry.released.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(rows: usize, policy: OverloadPolicy) -> AdmissionGate {
        AdmissionGate::new(AdmissionConfig {
            max_in_flight_rows: rows,
            policy,
            retry_after: Duration::from_millis(7),
        })
    }

    #[test]
    fn admits_until_capacity_then_rejects_with_the_hint() {
        let gate = gate(4, OverloadPolicy::RejectNew);
        let _a = gate.try_admit(2, None).unwrap();
        let _b = gate.try_admit(2, None).unwrap();
        assert_eq!(gate.in_flight_rows(), 4);
        assert_eq!(
            gate.try_admit(1, None).map(|_| ()).unwrap_err(),
            AdmitError::Overloaded {
                retry_after: Duration::from_millis(7)
            }
        );
    }

    #[test]
    fn dropping_a_permit_frees_its_rows() {
        let gate = gate(4, OverloadPolicy::RejectNew);
        let a = gate.try_admit(3, None).unwrap();
        assert!(gate.try_admit(2, None).is_err());
        drop(a);
        let kept = gate.try_admit(2, None).unwrap();
        // Release order doesn't matter: a later permit can outlive an
        // earlier one without wedging the budget.
        let b = gate.try_admit(1, None).unwrap();
        let c = gate.try_admit(1, None).unwrap();
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight_rows(), 2);
        drop(kept);
        assert_eq!(gate.in_flight_rows(), 0);
    }

    #[test]
    fn expired_deadlines_are_refused_without_a_slot() {
        let gate = gate(4, OverloadPolicy::RejectNew);
        let expired = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            gate.try_admit(1, Some(expired)).map(|_| ()).unwrap_err(),
            AdmitError::DeadlineExpired
        );
        assert_eq!(gate.in_flight_rows(), 0);
    }

    #[test]
    fn shed_expired_policy_evicts_dead_bookkeeping() {
        let gate = gate(4, OverloadPolicy::ShedExpired);
        // Occupy the gate with requests whose deadline passes immediately.
        let near = Instant::now() + Duration::from_millis(1);
        let _dead_a = gate.try_admit(2, Some(near)).unwrap();
        let _dead_b = gate.try_admit(2, Some(near)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        // RejectNew would refuse; ShedExpired reclaims the dead slots.
        let live = gate.try_admit(4, Some(Instant::now() + Duration::from_secs(5)));
        assert!(live.is_ok());
        assert_eq!(gate.in_flight_rows(), 4);
        // Full of *live* work still rejects.
        assert!(gate.try_admit(1, None).is_err());
    }

    #[test]
    fn reject_new_policy_keeps_expired_bookkeeping() {
        let gate = gate(4, OverloadPolicy::RejectNew);
        let near = Instant::now() + Duration::from_millis(1);
        let _dead = gate.try_admit(4, Some(near)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert!(matches!(
            gate.try_admit(1, None),
            Err(AdmitError::Overloaded { .. })
        ));
    }

    #[test]
    fn an_oversized_batch_is_admitted_when_idle() {
        let gate = gate(4, OverloadPolicy::RejectNew);
        let big = gate.try_admit(100, None).unwrap();
        assert_eq!(gate.in_flight_rows(), 100);
        assert!(gate.try_admit(1, None).is_err(), "gate is saturated");
        drop(big);
        assert_eq!(gate.in_flight_rows(), 0);
    }

    #[test]
    fn clones_share_one_budget() {
        let gate = gate(2, OverloadPolicy::RejectNew);
        let clone = gate.clone();
        let _a = gate.try_admit(2, None).unwrap();
        assert!(clone.try_admit(1, None).is_err());
        assert_eq!(clone.in_flight_rows(), 2);
    }
}
