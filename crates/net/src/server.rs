//! The TCP server runtime: accept loop, bounded connection pool, admission
//! control, framed per-connection protocol loop, graceful drain.
//!
//! # Threading model
//!
//! ```text
//!  accept thread                 connection pool (conn_threads threads)
//!  ─────────────                 ──────────────────────────────────────
//!  TcpListener::accept ──▶ mpsc queue ──▶ handler takes one connection,
//!                                         runs its framed request loop to
//!                                         completion (EOF / error / reap /
//!                                         shutdown), then takes the next
//!                                         queued connection
//!
//!  each prediction ──▶ admission gate ──▶ ff_serve::Server micro-batch
//!                                         queue ──▶ reply frame
//! ```
//!
//! The pool bounds concurrent connections at [`NetConfig::conn_threads`];
//! further accepted connections wait in the queue, unserviced — that is the
//! **backpressure** story for connections, and the kernel's listen backlog
//! bounds the rest. Prediction *work* is bounded separately by the
//! [`AdmissionGate`]: rows admitted but not yet replied to may not exceed
//! [`AdmissionConfig::max_in_flight_rows`], and the excess is refused
//! immediately with a typed `Overloaded` error carrying a retry-after hint
//! instead of queuing toward collapse. Requests whose
//! deadline budget has already expired are refused (`DeadlineExceeded`)
//! before they cost a GEMM slot, and the micro-batcher sheds requests whose
//! deadline expires while queued. Control frames (Stats/Health/Shutdown)
//! bypass the gate so operators keep visibility during overload.
//!
//! Within a connection, requests are handled strictly in order (which is
//! what lets clients pipeline without correlation bookkeeping), but every
//! prediction is funneled into the shared [`ff_serve::Server`]
//! micro-batcher, so rows from *different* connections coalesce into the
//! same GEMM batches — batching semantics and per-row quantization are
//! exactly those of in-process serving, and answers are bit-identical to
//! direct [`FrozenModel`] calls.
//!
//! Connections that stop making byte progress — idle between frames *or*
//! stalled mid-frame — are reaped after [`NetConfig::idle_timeout`], so a
//! slow-loris peer (or a wedged NAT) cannot pin a pool slot forever.
//!
//! # Protocol versions
//!
//! Each connection is answered in the dialect it speaks: the reader notes
//! the `FF8P` version of every request frame, and replies are encoded at
//! that version, so version-1 clients receive frames without the version-2
//! fields (deadlines, retry hints, health state, shed counters) and
//! version-1/-2 clients receive frames without the version-3 header meta
//! (model id, auth record) or payload extensions (per-model stats, health
//! model version). Pre-v3 requests carry no model id and route to the
//! registry's default model; they carry no token either, so they pass auth
//! only under an open [`AuthPolicy`] — configuring tokens deliberately
//! locks out clients too old to present one.
//!
//! # Shutdown: two-phase drain
//!
//! [`NetServer::shutdown`] (or a client's `Shutdown` frame) moves the
//! server `Running → Draining → Stopped`:
//!
//! 1. **Draining** — the accept loop stops accepting; open connections keep
//!    their protocol loop: in-flight predictions finish and their replies
//!    are written, control frames still work (`Health` reports the draining
//!    state), but *new* predictions are refused with a typed `Draining`
//!    error. The accept thread supervises the drain: it waits until the
//!    admission gate is empty or [`NetConfig::drain_budget`] elapses.
//! 2. **Stopped** — handlers close their connections (between frames, at
//!    EOF, or at the next read-timeout tick), the pool drains, and the
//!    micro-batching engine is shut down last, answering everything still
//!    in flight.

use crate::admission::{AdmissionConfig, AdmissionGate, AdmitError};
use crate::auth::AuthPolicy;
use crate::protocol::{
    decode_frame_meta, write_frame_meta, Frame, FrameMeta, WireHealthState, WireMode,
    DEFAULT_MAX_FRAME_BYTES, FRAME_KIND_COUNT, PROTOCOL_VERSION,
};
use crate::{ErrorCode, NetError, Result};
use ff_metrics::Counter;
use ff_serve::{
    FrozenModel, MetricsRegistry, ModelRegistry, ServeConfig, ServeError, ServeHandle, ServeMode,
    Server, SharedHistogram, ShedCounters, Stage, TraceHandle,
};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Network front-end configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Connection-handler threads — the bound on concurrently serviced
    /// connections (excess connections queue unserviced).
    pub conn_threads: usize,
    /// Per-connection read timeout. Doubles as the shutdown/reap poll
    /// period for idle connections, so keep it finite.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Reap a connection after this long without byte progress — idle
    /// between frames or stalled mid-frame — so slow peers cannot pin pool
    /// slots (slow-loris defense). Must be at least `read_timeout`.
    pub idle_timeout: Duration,
    /// How long a graceful shutdown waits for admitted predictions to
    /// finish before closing connections anyway.
    pub drain_budget: Duration,
    /// Upper bound on one frame's length, both directions.
    pub max_frame_bytes: usize,
    /// Admission-control sizing and overload policy.
    pub admission: AdmissionConfig,
    /// Bearer-token auth for predictions and shutdown (default: open — no
    /// tokens required, matching pre-v3 behavior).
    pub auth: AuthPolicy,
    /// Configuration of the inner micro-batching engine.
    pub serve: ServeConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            conn_threads: 4,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            drain_budget: Duration::from_secs(5),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            admission: AdmissionConfig::default(),
            auth: AuthPolicy::default(),
            serve: ServeConfig::default(),
        }
    }
}

/// Server lifecycle phases; transitions are monotonic.
const PHASE_RUNNING: u8 = 0;
const PHASE_DRAINING: u8 = 1;
const PHASE_STOPPED: u8 = 2;

struct NetShared {
    handle: ServeHandle,
    config: NetConfig,
    /// The live auth policy. Seeded from `config.auth`, replaced atomically
    /// by [`NetServer::set_auth`]; each connection snapshots it once at
    /// accept time, so in-flight connections finish under the policy they
    /// started with while every new connection sees the rotated tokens.
    auth: RwLock<Arc<AuthPolicy>>,
    phase: AtomicU8,
    local_addr: SocketAddr,
    gate: AdmissionGate,
    counters: ShedCounters,
    /// The engine's `serve.stage.write_ns` histogram: the reply writers
    /// record socket-write time here so wire clients see all four stages in
    /// one `StatsReply`.
    write_stage: SharedHistogram,
    /// Per-kind frame/byte accounting for everything crossing the wire,
    /// both directions (`net.wire.<kind>.{frames,bytes}`).
    wire: WireCounters,
}

/// Pre-minted per-kind wire counters: the hot path is two atomic adds per
/// frame, with no registry lookup and no lock. Request kinds accumulate on
/// the read path, reply kinds on the write path, so one dense set covers
/// both directions without double counting.
#[derive(Clone)]
struct WireCounters {
    frames: Vec<Counter>,
    bytes: Vec<Counter>,
}

impl WireCounters {
    fn new(metrics: &MetricsRegistry) -> Self {
        let mut frames = Vec::with_capacity(FRAME_KIND_COUNT);
        let mut bytes = Vec::with_capacity(FRAME_KIND_COUNT);
        for name in Frame::kind_names() {
            frames.push(metrics.counter(&format!("net.wire.{name}.frames")));
            bytes.push(metrics.counter(&format!("net.wire.{name}.bytes")));
        }
        WireCounters { frames, bytes }
    }

    /// Accounts one frame of `kind_index`. `wire_bytes` is the full
    /// on-the-wire size including the 4-byte length prefix.
    fn account(&self, kind_index: usize, wire_bytes: u64) {
        self.frames[kind_index].inc();
        self.bytes[kind_index].add(wire_bytes);
    }
}

impl NetShared {
    /// The auth policy for a connection starting now.
    fn auth_snapshot(&self) -> Arc<AuthPolicy> {
        match self.auth.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn phase(&self) -> u8 {
        self.phase.load(Ordering::Acquire)
    }

    /// Advances the lifecycle phase, never backwards.
    fn advance_phase(&self, to: u8) {
        self.phase.fetch_max(to, Ordering::AcqRel);
    }
}

/// A running TCP inference server wrapping a [`ff_serve::Server`].
///
/// # Examples
///
/// ```
/// use ff_models::small_mlp;
/// use ff_net::{Client, NetConfig, NetServer};
/// use ff_serve::FrozenModel;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = FrozenModel::freeze(&small_mlp(12, &[8], 4, &mut rng), 4)?;
/// let server = NetServer::bind(model, "127.0.0.1:0", NetConfig::default())?;
///
/// let mut client = Client::connect(server.local_addr())?;
/// let label = client.predict(&[0.5; 12])?;
/// assert!(label < 4);
/// client.close();
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct NetServer {
    shared: Arc<NetShared>,
    accept: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    engine: Option<Server>,
}

impl NetServer {
    /// Starts the inner micro-batching engine, binds `addr` (use port 0 for
    /// an ephemeral port) and spawns the accept loop plus the connection
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Frame`] for an unusable configuration (zero
    /// `conn_threads`, a zero frame limit, zero timeouts, an `idle_timeout`
    /// below `read_timeout`, or a zero admission budget), [`NetError::Io`]
    /// when the bind fails, and engine-start errors rendered as
    /// [`NetError::Remote`] with [`ErrorCode::Internal`].
    pub fn bind(model: FrozenModel, addr: impl ToSocketAddrs, config: NetConfig) -> Result<Self> {
        Self::bind_registry(ModelRegistry::new(model), addr, config)
    }

    /// Like [`NetServer::bind`], but fronting a whole [`ModelRegistry`]:
    /// requests route by the model id carried in their version-3 frame
    /// header (version-1/-2 frames, which cannot carry one, go to the
    /// registry's default model), every model shares the one micro-batcher
    /// and admission gate, and entries can be hot-swapped under live
    /// traffic via the registry handle ([`NetServer::handle`] →
    /// [`ff_serve::ServeHandle::registry`]).
    ///
    /// # Errors
    ///
    /// Exactly those of [`NetServer::bind`].
    pub fn bind_registry(
        registry: ModelRegistry,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> Result<Self> {
        if config.conn_threads == 0 {
            return Err(NetError::Frame {
                message: "config.conn_threads must be positive".to_string(),
            });
        }
        if config.max_frame_bytes < 64 {
            return Err(NetError::Frame {
                message: "config.max_frame_bytes must be at least 64".to_string(),
            });
        }
        if config.read_timeout.is_zero() || config.write_timeout.is_zero() {
            return Err(NetError::Frame {
                message: "config timeouts must be positive".to_string(),
            });
        }
        if config.idle_timeout < config.read_timeout {
            return Err(NetError::Frame {
                message: "config.idle_timeout must be at least config.read_timeout".to_string(),
            });
        }
        if config.admission.max_in_flight_rows == 0 {
            return Err(NetError::Frame {
                message: "config.admission.max_in_flight_rows must be positive".to_string(),
            });
        }
        let engine = Server::start_registry(registry, config.serve).map_err(serve_to_net)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let admission = config.admission;
        let shared = Arc::new(NetShared {
            handle: engine.handle(),
            counters: engine.handle().shed_counters(),
            write_stage: engine.handle().stage_histograms().write,
            wire: WireCounters::new(&engine.handle().metrics()),
            auth: RwLock::new(Arc::new(config.auth.clone())),
            config,
            phase: AtomicU8::new(PHASE_RUNNING),
            local_addr,
            gate: AdmissionGate::new(admission),
        });
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let handlers = (0..shared.config.conn_threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let conn_rx = Arc::clone(&conn_rx);
                std::thread::Builder::new()
                    .name(format!("ff-net-conn-{index}"))
                    .spawn(move || handler_loop(&shared, &conn_rx))
                    .expect("spawning a named handler thread cannot fail")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ff-net-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener, conn_tx))
                .expect("spawning the accept thread cannot fail")
        };
        Ok(NetServer {
            shared,
            accept: Some(accept),
            handlers,
            engine: Some(engine),
        })
    }

    /// The address the server is listening on (the resolved ephemeral port
    /// when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// An in-process handle onto the inner micro-batching engine — the
    /// zero-copy path for co-located callers, and what parity tests compare
    /// network answers against.
    pub fn handle(&self) -> ServeHandle {
        self.shared.handle.clone()
    }

    /// Replaces the auth policy without restarting the server — token
    /// rotation for a live fleet.
    ///
    /// The swap is atomic at connection granularity: connections accepted
    /// after this call authenticate every frame against `policy`, while
    /// connections already in flight finish under the policy they were
    /// accepted with (a rotation never cuts off a request stream
    /// mid-conversation). To *revoke* instantly as well, rotate and then
    /// drain: existing connections expire at the idle timeout.
    pub fn set_auth(&self, policy: AuthPolicy) {
        match self.shared.auth.write() {
            Ok(mut slot) => *slot = Arc::new(policy),
            Err(poisoned) => *poisoned.into_inner() = Arc::new(policy),
        }
    }

    /// `true` once a shutdown (local or via a `Shutdown` frame) has been
    /// requested — the server is draining or already stopped.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.phase() >= PHASE_DRAINING
    }

    /// Gracefully stops the server: drain, then close, then shut the
    /// inference engine down.
    ///
    /// The drain phase stops accepting connections and refuses new
    /// predictions with typed `Draining` errors while admitted work
    /// finishes and its replies are written — bounded by
    /// [`NetConfig::drain_budget`]. Connections then close between frames,
    /// at EOF, or at the next read-timeout tick, so the close phase takes
    /// at most one [`NetConfig::read_timeout`] beyond the drain.
    pub fn shutdown(mut self) {
        request_drain(&self.shared);
        if let Some(accept) = self.accept.take() {
            if let Err(panic) = accept.join() {
                std::panic::resume_unwind(panic);
            }
        }
        for handler in self.handlers.drain(..) {
            if let Err(panic) = handler.join() {
                std::panic::resume_unwind(panic);
            }
        }
        if let Some(engine) = self.engine.take() {
            engine.shutdown();
        }
    }
}

/// Starts the drain phase and wakes the accept loop with a loopback
/// connection; the accept thread supervises the rest of the drain.
fn request_drain(shared: &NetShared) {
    if shared
        .phase
        .compare_exchange(
            PHASE_RUNNING,
            PHASE_DRAINING,
            Ordering::AcqRel,
            Ordering::Acquire,
        )
        .is_err()
    {
        return; // already draining or stopped; the nudge was sent
    }
    // A throwaway connection unblocks `TcpListener::accept`; the loop then
    // observes the phase and starts supervising the drain. Failure is fine —
    // the listener may already be gone.
    let _ = TcpStream::connect(shared.local_addr);
}

/// Accepts connections while running, then supervises the drain: waits for
/// the admission gate to empty (or the drain budget to expire) and flips
/// the server to `Stopped`. Dropping `conn_tx` on exit drains the handler
/// pool.
fn accept_loop(shared: &NetShared, listener: &TcpListener, conn_tx: mpsc::Sender<TcpStream>) {
    while shared.phase() == PHASE_RUNNING {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.phase() != PHASE_RUNNING {
                    break; // the shutdown nudge (or a late connection)
                }
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                // Transient accept errors (aborted handshakes) are retried;
                // a phase change still wins via the loop condition.
            }
        }
    }
    let deadline = Instant::now() + shared.config.drain_budget;
    while shared.phase() < PHASE_STOPPED
        && shared.gate.in_flight_rows() > 0
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    shared.advance_phase(PHASE_STOPPED);
}

/// One pool thread: service queued connections until the queue closes.
fn handler_loop(shared: &NetShared, conn_rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // Take ONE connection while holding the lock, then release it so
        // sibling handlers can pick up further connections concurrently.
        let stream = {
            let queue = conn_rx.lock().expect("connection queue lock");
            match queue.recv() {
                Ok(stream) => stream,
                Err(_) => return, // accept loop gone and queue drained
            }
        };
        // Per-connection failures never take the handler down.
        let _ = serve_connection(shared, stream);
        if shared.phase() == PHASE_STOPPED {
            return;
        }
    }
}

/// What the connection's reader hands its reply writer, in request order.
/// Every variant carries the peer protocol version its reply must be
/// encoded at and the header meta to echo (the request's model id — never
/// the auth token).
enum Outgoing {
    /// A reply that is already complete (stats, health, errors, acks).
    Ready {
        frame: Frame,
        version: u16,
        meta: FrameMeta,
    },
    /// Predictions already submitted to the micro-batcher; the writer waits
    /// for them, builds the `Labels` (or error) reply, and releases the
    /// admission permit once the reply is written.
    Deferred {
        id: u64,
        version: u16,
        meta: FrameMeta,
        pendings: Vec<ff_serve::PendingPrediction>,
        permit: crate::admission::Permit,
        /// The request's trace, when sampled: the writer stamps
        /// [`Stage::ReplyWritten`] once the reply bytes hit the socket, and
        /// the last handle drop commits the trace to the flight recorder.
        trace: Option<TraceHandle>,
    },
}

/// Runs one connection's framed request loop to completion.
///
/// The loop is split across two threads so clients can **pipeline**: the
/// reader decodes frames and *submits* predictions to the micro-batcher
/// without waiting ([`ff_serve::ServeHandle::submit`]), while a
/// per-connection writer thread awaits the pending replies **in request
/// order** and writes them back. A wave of pipelined `Predict` frames is
/// therefore entirely in the batch queue before the first reply is due —
/// rows from one wave (and from other connections) coalesce into shared
/// GEMM batches instead of being served one blocking call at a time.
fn serve_connection(shared: &NetShared, stream: TcpStream) -> Result<()> {
    let max = shared.config.max_frame_bytes;
    // One policy per connection lifetime: a concurrent `set_auth` affects
    // connections accepted after it, never a request stream mid-flight.
    let auth = shared.auth_snapshot();
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let writer = std::io::BufWriter::new(stream);

    let (out_tx, out_rx) = mpsc::channel::<Outgoing>();
    let writer_alive = Arc::new(AtomicBool::new(true));
    let writer_thread = {
        let alive = Arc::clone(&writer_alive);
        std::thread::Builder::new()
            .name("ff-net-reply".to_string())
            .spawn({
                let write_stage = shared.write_stage.clone();
                let wire = shared.wire.clone();
                move || reply_writer_loop(writer, out_rx, max, &alive, &write_stage, &wire)
            })
            .expect("spawning the reply writer cannot fail")
    };
    let outcome = connection_reader_loop(shared, &auth, &mut reader, &out_tx, &writer_alive);
    drop(out_tx); // writer drains queued replies, then exits
    if let Err(panic) = writer_thread.join() {
        std::panic::resume_unwind(panic);
    }
    outcome
}

/// What one attempt to fill a buffer from the socket produced.
enum Fill {
    /// The buffer is completely filled.
    Done,
    /// Clean EOF before the first byte of the buffer.
    Eof,
    /// Read timeout with nothing of this frame consumed — an idle tick the
    /// caller uses to poll the phase and the reap clock.
    Idle,
    /// Shutdown finished (`Stopped`) while a frame was partially read.
    Aborted,
}

/// Fills `buf` from the socket with frame-aware timeout semantics.
///
/// Read timeouts are only an *idle* signal when nothing of the current
/// frame has been consumed (`frame_started == false` and zero bytes
/// filled). Once a frame has started, a timeout means the sender stalled
/// mid-frame — the bytes already consumed must not be discarded, so the
/// read **resumes** (checking the phase each tick) instead of returning;
/// anything else would desynchronize the length-prefixed stream. The
/// resume is bounded: a sender that makes no byte progress for
/// [`NetConfig::idle_timeout`] is reaped with [`NetError::Timeout`] — a
/// slow-loris peer drip-feeding (or abandoning) a frame cannot pin the
/// handler slot beyond that. Shutdown still interrupts a stalled read
/// within one timeout tick.
fn fill_frame_bytes(
    reader: &mut impl std::io::Read,
    buf: &mut [u8],
    shared: &NetShared,
    frame_started: bool,
) -> Result<Fill> {
    let mut filled = 0;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && !frame_started {
                    Ok(Fill::Eof)
                } else {
                    Err(NetError::Closed) // EOF mid-frame
                };
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && !frame_started {
                    return Ok(Fill::Idle);
                }
                if shared.phase() == PHASE_STOPPED {
                    return Ok(Fill::Aborted);
                }
                if last_progress.elapsed() >= shared.config.idle_timeout {
                    return Err(NetError::Timeout); // mid-frame stall: reap
                }
                // Mid-frame stall (slow sender / retransmit): resume.
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Done)
}

/// The reader half of [`serve_connection`].
fn connection_reader_loop(
    shared: &NetShared,
    auth: &AuthPolicy,
    reader: &mut impl std::io::Read,
    out_tx: &mpsc::Sender<Outgoing>,
    writer_alive: &AtomicBool,
) -> Result<()> {
    let max = shared.config.max_frame_bytes;
    // Until the peer's first valid frame declares its dialect, errors are
    // answered at the newest version.
    let mut peer_version = PROTOCOL_VERSION;
    let mut last_activity = Instant::now();
    loop {
        if !writer_alive.load(Ordering::Acquire) {
            return Ok(()); // peer stopped reading replies; stop serving it
        }
        let mut len_bytes = [0u8; 4];
        match fill_frame_bytes(reader, &mut len_bytes, shared, false)? {
            Fill::Done => {}
            Fill::Eof | Fill::Aborted => return Ok(()),
            Fill::Idle => {
                if shared.phase() == PHASE_STOPPED {
                    return Ok(()); // shutdown poll tick
                }
                if last_activity.elapsed() >= shared.config.idle_timeout {
                    return Err(NetError::Timeout); // idle reap: free the slot
                }
                continue; // idle connection: keep waiting
            }
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > max {
            // The stream cannot be resynchronized past an unread giant
            // frame: answer once, then close.
            let _ = out_tx.send(Outgoing::Ready {
                frame: Frame::Error {
                    id: 0,
                    code: ErrorCode::FrameTooLarge,
                    retry_after_millis: 0,
                    message: format!("frame of {len} bytes exceeds the {max}-byte limit"),
                },
                version: peer_version,
                meta: FrameMeta::default(),
            });
            return Ok(());
        }
        let mut bytes = vec![0u8; len];
        match fill_frame_bytes(reader, &mut bytes, shared, true)? {
            Fill::Done => {}
            Fill::Eof | Fill::Idle | Fill::Aborted => return Ok(()),
        }
        last_activity = Instant::now();
        let (frame, meta) = match decode_frame_meta(&bytes) {
            Ok((frame, version, meta)) => {
                peer_version = version;
                shared
                    .wire
                    .account(frame.kind_index(), bytes.len() as u64 + 4);
                (frame, meta)
            }
            Err(error) => {
                let _ = out_tx.send(Outgoing::Ready {
                    frame: Frame::Error {
                        id: 0,
                        code: ErrorCode::Protocol,
                        retry_after_millis: 0,
                        message: error.to_string(),
                    },
                    version: peer_version,
                    meta: FrameMeta::default(),
                });
                return Ok(());
            }
        };
        let outgoing = handle_request(shared, auth, frame, &meta, peer_version);
        // Only an *acknowledged* shutdown drains the server — an
        // unauthenticated Shutdown frame is answered `Unauthorized` and
        // changes nothing. The drain flag flips BEFORE the ack is handed
        // to the writer: the moment a client reads the ack,
        // `is_shutting_down()` is already true.
        let shutdown_after = matches!(
            &outgoing,
            Outgoing::Ready {
                frame: Frame::ShutdownAck { .. },
                ..
            }
        );
        if shutdown_after {
            request_drain(shared);
        }
        if out_tx.send(outgoing).is_err() {
            return Ok(()); // writer gone (write failure): close
        }
        if shutdown_after {
            return Ok(());
        }
        if shared.phase() == PHASE_STOPPED {
            // A busy connection must notice the stop between frames, not
            // only on idle ticks — already-submitted replies still drain
            // through the writer before the socket closes.
            return Ok(());
        }
    }
}

/// The writer half of [`serve_connection`]: awaits deferred predictions in
/// request order, writes every reply frame at the peer's protocol version,
/// and releases admission permits once their reply is on the wire.
fn reply_writer_loop(
    mut writer: impl std::io::Write,
    out_rx: mpsc::Receiver<Outgoing>,
    max_frame_bytes: usize,
    alive: &AtomicBool,
    write_stage: &SharedHistogram,
    wire: &WireCounters,
) {
    for outgoing in out_rx {
        let (frame, version, meta, permit, trace) = match outgoing {
            Outgoing::Ready {
                frame,
                version,
                meta,
            } => (frame, version, meta, None, None),
            Outgoing::Deferred {
                id,
                version,
                meta,
                pendings,
                permit,
                trace,
            } => {
                let mut labels = Vec::with_capacity(pendings.len());
                let mut first_error = None;
                for pending in pendings {
                    match pending.wait() {
                        Ok(prediction) => labels.push(prediction.label as u32),
                        Err(error) => {
                            first_error.get_or_insert(error);
                        }
                    }
                }
                let frame = match first_error {
                    None => Frame::Labels { id, labels },
                    Some(error) => error_reply(id, &error),
                };
                (frame, version, meta, Some(permit), Some(trace))
            }
        };
        // The write stage clock starts once the reply is ready to encode —
        // it measures serialization plus the socket write, per reply.
        let write_start = trace.is_some().then(Instant::now);
        let outcome = write_frame_meta(&mut writer, &frame, version, &meta, max_frame_bytes);
        if let Ok(written) = &outcome {
            wire.account(frame.kind_index(), *written as u64);
            if let Some(start) = write_start {
                write_stage.record(start.elapsed());
                if let Some(trace) = trace.flatten() {
                    trace.stamp(Stage::ReplyWritten);
                }
            }
        }
        // The admission slot is held until the reply hit the socket (or the
        // peer proved unreachable); dropping the channel on early exit
        // releases the permits of any still-queued replies.
        drop(permit);
        if outcome.is_err() {
            break; // peer gone; reader observes `alive` and closes
        }
    }
    alive.store(false, Ordering::Release);
}

/// Saturating conversion for the wire's `u32` retry-after hint.
fn retry_hint_millis(hint: Duration) -> u32 {
    hint.as_millis().min(u32::MAX as u128) as u32
}

/// Turns one request frame into its outgoing reply, submitting predictions
/// to the micro-batcher without blocking (replies never fail to build;
/// engine errors become typed error frames).
///
/// `meta` is the request's decoded header: predictions are authorized
/// against its auth token and routed to its model id, `Health` reports the
/// addressed model, and `Shutdown` must authenticate. Replies echo the
/// model id (never the token). Version-1/-2 frames arrive with the default
/// meta — model id 0 and no token — which routes them to the registry's
/// default model and, under an open [`AuthPolicy`], keeps them working
/// unchanged.
///
/// Predictions pass the admission gate first; refusals are answered with
/// machine-readable `Overloaded` / `DeadlineExceeded` / `Draining` codes so
/// clients can distinguish "retry later" from "give up".
fn handle_request(
    shared: &NetShared,
    auth: &AuthPolicy,
    frame: Frame,
    meta: &FrameMeta,
    version: u16,
) -> Outgoing {
    let id = frame.id();
    let reply_meta = FrameMeta::for_model(meta.model_id);
    match frame {
        Frame::Predict {
            id,
            deadline_micros,
            features,
        } => submit_prediction(
            shared,
            auth,
            id,
            version,
            meta,
            deadline_micros,
            Payload {
                features: &features,
                rows: 1,
            },
        ),
        Frame::PredictBatch {
            id,
            deadline_micros,
            cols,
            data,
        } => {
            let rows = data.len() / cols as usize;
            submit_prediction(
                shared,
                auth,
                id,
                version,
                meta,
                deadline_micros,
                Payload {
                    features: &data,
                    rows,
                },
            )
        }
        // Stats and Health stay open (see `crate::auth`): they carry no
        // tenant data and are what dashboards and load balancers poll.
        Frame::Stats { id } => Outgoing::Ready {
            frame: Frame::StatsReply {
                id,
                stats: Box::new(shared.handle.stats().into()),
            },
            version,
            meta: reply_meta,
        },
        Frame::Health { id } => {
            let snapshot = match shared.handle.resolve(meta.model_id) {
                Ok(snapshot) => snapshot,
                Err(error) => {
                    return Outgoing::Ready {
                        frame: error_reply(id, &error),
                        version,
                        meta: reply_meta,
                    }
                }
            };
            Outgoing::Ready {
                frame: Frame::HealthReply {
                    id,
                    input_features: snapshot.model().input_features() as u32,
                    num_classes: snapshot.model().num_classes() as u32,
                    model_version: snapshot.entry().version(),
                    mode: match shared.config.serve.mode {
                        ServeMode::Logits => WireMode::Logits,
                        ServeMode::Goodness => WireMode::Goodness,
                    },
                    state: if shared.phase() >= PHASE_DRAINING {
                        WireHealthState::Draining
                    } else {
                        WireHealthState::Ok
                    },
                },
                version,
                meta: reply_meta,
            }
        }
        // Like Stats/Health, the observability dumps stay open: traces and
        // metrics carry operational timings, not tenant payloads.
        Frame::TraceDump { id, max } => {
            let recorder = shared.handle.flight_recorder();
            Outgoing::Ready {
                frame: Frame::TraceDumpReply {
                    id,
                    dropped: recorder.dropped(),
                    traces: recorder.recent(max as usize),
                },
                version,
                meta: reply_meta,
            }
        }
        Frame::MetricsDump { id } => Outgoing::Ready {
            frame: Frame::MetricsDumpReply {
                id,
                text: shared.handle.metrics().expose(),
            },
            version,
            meta: reply_meta,
        },
        Frame::Shutdown { id } => {
            if !auth.authenticate(meta.token.as_deref()) {
                return unauthorized_reply(id, version, reply_meta);
            }
            Outgoing::Ready {
                frame: Frame::ShutdownAck { id },
                version,
                meta: reply_meta,
            }
        }
        // A reply frame arriving at the server is a protocol violation.
        other => Outgoing::Ready {
            frame: Frame::Error {
                id,
                code: ErrorCode::Protocol,
                retry_after_millis: 0,
                message: format!("server received a non-request frame ({other:?})"),
            },
            version,
            meta: reply_meta,
        },
    }
}

/// The `Unauthorized` refusal. The message deliberately names neither the
/// presented token nor which configured token was closest.
fn unauthorized_reply(id: u64, version: u16, meta: FrameMeta) -> Outgoing {
    Outgoing::Ready {
        frame: Frame::Error {
            id,
            code: ErrorCode::Unauthorized,
            retry_after_millis: 0,
            message: "missing or invalid auth token".to_string(),
        },
        version,
        meta,
    }
}

/// Authorizes, routes, admission-gates and submits `rows` rows of features
/// row-by-row to the micro-batcher, stamping each with the request's
/// deadline.
///
/// The model snapshot is resolved **once** and every row submitted against
/// it, so one request's rows are all answered by the same model epoch even
/// if the entry is hot-swapped mid-request. Rejections bump both the global
/// shed counters and the addressed model's.
/// The feature rows of one `Predict`/`PredictBatch` request.
struct Payload<'a> {
    features: &'a [f32],
    rows: usize,
}

fn submit_prediction(
    shared: &NetShared,
    auth: &AuthPolicy,
    id: u64,
    version: u16,
    meta: &FrameMeta,
    deadline_micros: u32,
    payload: Payload<'_>,
) -> Outgoing {
    let Payload { features, rows } = payload;
    let reply_meta = FrameMeta::for_model(meta.model_id);
    // The trace starts at the top of request handling — refused requests
    // drop it unstamped past Recv, committing (flagged incomplete) only if
    // they were sampled or slow.
    let trace = shared.handle.begin_trace(meta.model_id);
    // Auth precedes existence: an unauthorized peer probing ids learns
    // nothing about which models are registered.
    if !auth.authorize(meta.token.as_deref(), meta.model_id) {
        return unauthorized_reply(id, version, reply_meta);
    }
    let deadline = (deadline_micros > 0)
        .then(|| Instant::now() + Duration::from_micros(deadline_micros.into()));
    if shared.phase() >= PHASE_DRAINING {
        return Outgoing::Ready {
            frame: Frame::Error {
                id,
                code: ErrorCode::Draining,
                retry_after_millis: retry_hint_millis(shared.config.drain_budget),
                message: "server is draining; retry against a live instance".to_string(),
            },
            version,
            meta: reply_meta,
        };
    }
    let snapshot = match shared.handle.resolve(meta.model_id) {
        Ok(snapshot) => snapshot,
        Err(error) => {
            return Outgoing::Ready {
                frame: error_reply(id, &error),
                version,
                meta: reply_meta,
            }
        }
    };
    let permit = match shared.gate.try_admit(rows, deadline) {
        Ok(permit) => permit,
        Err(AdmitError::Overloaded { retry_after }) => {
            shared.counters.rejected_overload.inc();
            snapshot.entry().shed_counters().rejected_overload.inc();
            return Outgoing::Ready {
                frame: Frame::Error {
                    id,
                    code: ErrorCode::Overloaded,
                    retry_after_millis: retry_hint_millis(retry_after),
                    message: format!(
                        "admission queue full ({} rows in flight)",
                        shared.config.admission.max_in_flight_rows
                    ),
                },
                version,
                meta: reply_meta,
            };
        }
        Err(AdmitError::DeadlineExpired) => {
            shared.counters.rejected_deadline.inc();
            snapshot.entry().shed_counters().rejected_deadline.inc();
            return Outgoing::Ready {
                frame: Frame::Error {
                    id,
                    code: ErrorCode::DeadlineExceeded,
                    retry_after_millis: 0,
                    message: "deadline budget expired before admission".to_string(),
                },
                version,
                meta: reply_meta,
            };
        }
    };
    if let Some(trace) = &trace {
        trace.stamp(Stage::Admit);
        if let Some(deadline) = deadline {
            let now = Instant::now();
            match deadline.checked_duration_since(now) {
                Some(remaining) => trace.set_deadline_remaining(remaining, false),
                None => trace.set_deadline_remaining(now.duration_since(deadline), true),
            }
        }
    }
    let cols = features.len() / rows;
    let mut pendings = Vec::with_capacity(rows);
    for row in features.chunks_exact(cols) {
        match shared
            .handle
            .submit_snapshot_traced(&snapshot, row, deadline, trace.clone())
        {
            Ok(pending) => pendings.push(pending),
            // The permit drops here, releasing the partial admission.
            Err(error) => {
                return Outgoing::Ready {
                    frame: error_reply(id, &error),
                    version,
                    meta: reply_meta,
                }
            }
        }
    }
    Outgoing::Deferred {
        id,
        version,
        meta: reply_meta,
        pendings,
        permit,
        trace,
    }
}

fn error_reply(id: u64, error: &ServeError) -> Frame {
    let code = match error {
        ServeError::BadRequest { .. } => ErrorCode::BadRequest,
        ServeError::UnknownModel { .. } => ErrorCode::UnknownModel,
        ServeError::ServerClosed => ErrorCode::ServerClosed,
        ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        _ => ErrorCode::Internal,
    };
    Frame::Error {
        id,
        code,
        retry_after_millis: 0,
        message: error.to_string(),
    }
}

fn serve_to_net(error: ServeError) -> NetError {
    NetError::Remote {
        code: ErrorCode::Internal,
        message: error.to_string(),
        retry_after: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::OverloadPolicy;
    use ff_models::small_mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> FrozenModel {
        let mut rng = StdRng::seed_from_u64(5);
        FrozenModel::freeze(&small_mlp(8, &[6], 3, &mut rng), 3).unwrap()
    }

    #[test]
    fn bind_validates_config() {
        for bad in [
            NetConfig {
                conn_threads: 0,
                ..NetConfig::default()
            },
            NetConfig {
                max_frame_bytes: 8,
                ..NetConfig::default()
            },
            NetConfig {
                read_timeout: Duration::ZERO,
                ..NetConfig::default()
            },
            NetConfig {
                idle_timeout: Duration::from_millis(1),
                ..NetConfig::default()
            },
            NetConfig {
                admission: AdmissionConfig {
                    max_in_flight_rows: 0,
                    policy: OverloadPolicy::RejectNew,
                    retry_after: Duration::from_millis(1),
                },
                ..NetConfig::default()
            },
        ] {
            assert!(NetServer::bind(model(), "127.0.0.1:0", bad).is_err());
        }
    }

    #[test]
    fn binds_an_ephemeral_port_and_shuts_down() {
        let server = NetServer::bind(model(), "127.0.0.1:0", NetConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert!(!server.is_shutting_down());
        // The in-process handle answers without any socket.
        assert!(server.handle().predict(&[0.1; 8]).is_ok());
        server.shutdown();
    }

    #[test]
    fn retry_hints_saturate() {
        assert_eq!(retry_hint_millis(Duration::from_millis(25)), 25);
        assert_eq!(retry_hint_millis(Duration::from_secs(u64::MAX)), u32::MAX);
    }
}
