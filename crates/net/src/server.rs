//! The TCP server runtime: accept loop, bounded connection pool, framed
//! per-connection protocol loop.
//!
//! # Threading model
//!
//! ```text
//!  accept thread                 connection pool (conn_threads threads)
//!  ─────────────                 ──────────────────────────────────────
//!  TcpListener::accept ──▶ mpsc queue ──▶ handler takes one connection,
//!                                         runs its framed request loop to
//!                                         completion (EOF / error /
//!                                         shutdown), then takes the next
//!                                         queued connection
//!
//!  each request ──▶ ff_serve::Server micro-batch queue ──▶ reply frame
//! ```
//!
//! The pool bounds concurrent connections at [`NetConfig::conn_threads`];
//! further accepted connections wait in the queue, unserviced — that is the
//! **backpressure** story: a client that connects during overload blocks in
//! `connect`-then-first-reply rather than overwhelming the engine, and the
//! kernel's listen backlog bounds the rest. Within a connection, requests
//! are handled strictly in order (which is what lets clients pipeline
//! without correlation bookkeeping), but every prediction is funneled into
//! the shared [`ff_serve::Server`] micro-batcher, so rows from *different*
//! connections coalesce into the same GEMM batches — batching semantics and
//! per-row quantization are exactly those of in-process serving, and
//! answers are bit-identical to direct [`FrozenModel`] calls.
//!
//! # Shutdown
//!
//! [`NetServer::shutdown`] (or a client's `Shutdown` frame) sets the stop
//! flag and nudges the accept loop awake with a loopback connection.
//! Handlers observe the flag between frames, at their next read-timeout
//! tick, or on connection close — so even a connection streaming requests
//! back-to-back releases its handler promptly — and the micro-batching
//! engine is shut down last, answering everything still in flight.

use crate::protocol::{decode_frame, write_frame, Frame, WireMode, DEFAULT_MAX_FRAME_BYTES};
use crate::{ErrorCode, NetError, Result};
use ff_serve::{FrozenModel, ServeConfig, ServeError, ServeHandle, ServeMode, Server};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Network front-end configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Connection-handler threads — the bound on concurrently serviced
    /// connections (excess connections queue unserviced).
    pub conn_threads: usize,
    /// Per-connection read timeout. Doubles as the shutdown poll period
    /// for idle connections, so keep it finite.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Upper bound on one frame's length, both directions.
    pub max_frame_bytes: usize,
    /// Configuration of the inner micro-batching engine.
    pub serve: ServeConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            conn_threads: 4,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            serve: ServeConfig::default(),
        }
    }
}

struct NetShared {
    handle: ServeHandle,
    config: NetConfig,
    stop: AtomicBool,
    local_addr: SocketAddr,
}

/// A running TCP inference server wrapping a [`ff_serve::Server`].
///
/// # Examples
///
/// ```
/// use ff_models::small_mlp;
/// use ff_net::{Client, NetConfig, NetServer};
/// use ff_serve::FrozenModel;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = FrozenModel::freeze(&small_mlp(12, &[8], 4, &mut rng), 4)?;
/// let server = NetServer::bind(model, "127.0.0.1:0", NetConfig::default())?;
///
/// let mut client = Client::connect(server.local_addr())?;
/// let label = client.predict(&[0.5; 12])?;
/// assert!(label < 4);
/// client.close();
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct NetServer {
    shared: Arc<NetShared>,
    accept: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    engine: Option<Server>,
}

impl NetServer {
    /// Starts the inner micro-batching engine, binds `addr` (use port 0 for
    /// an ephemeral port) and spawns the accept loop plus the connection
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Frame`] for an unusable configuration (zero
    /// `conn_threads` or a zero frame limit), [`NetError::Io`] when the
    /// bind fails, and engine-start errors rendered as
    /// [`NetError::Remote`] with [`ErrorCode::Internal`].
    pub fn bind(model: FrozenModel, addr: impl ToSocketAddrs, config: NetConfig) -> Result<Self> {
        if config.conn_threads == 0 {
            return Err(NetError::Frame {
                message: "config.conn_threads must be positive".to_string(),
            });
        }
        if config.max_frame_bytes < 64 {
            return Err(NetError::Frame {
                message: "config.max_frame_bytes must be at least 64".to_string(),
            });
        }
        if config.read_timeout.is_zero() || config.write_timeout.is_zero() {
            return Err(NetError::Frame {
                message: "config timeouts must be positive".to_string(),
            });
        }
        let engine = Server::start(model, config.serve).map_err(serve_to_net)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            handle: engine.handle(),
            config,
            stop: AtomicBool::new(false),
            local_addr,
        });
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let handlers = (0..config.conn_threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let conn_rx = Arc::clone(&conn_rx);
                std::thread::Builder::new()
                    .name(format!("ff-net-conn-{index}"))
                    .spawn(move || handler_loop(&shared, &conn_rx))
                    .expect("spawning a named handler thread cannot fail")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ff-net-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener, &conn_tx))
                .expect("spawning the accept thread cannot fail")
        };
        Ok(NetServer {
            shared,
            accept: Some(accept),
            handlers,
            engine: Some(engine),
        })
    }

    /// The address the server is listening on (the resolved ephemeral port
    /// when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// An in-process handle onto the inner micro-batching engine — the
    /// zero-copy path for co-located callers, and what parity tests compare
    /// network answers against.
    pub fn handle(&self) -> ServeHandle {
        self.shared.handle.clone()
    }

    /// `true` once a shutdown (local or via a `Shutdown` frame) has been
    /// requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Stops accepting connections, drains the handler pool and shuts the
    /// inference engine down.
    ///
    /// Handlers finish their current request loop first: open connections
    /// close between frames, at EOF, or at the next read-timeout tick after
    /// the flag is set, so shutdown takes at most one
    /// [`NetConfig::read_timeout`] beyond the last in-flight request.
    pub fn shutdown(mut self) {
        request_shutdown(&self.shared);
        if let Some(accept) = self.accept.take() {
            if let Err(panic) = accept.join() {
                std::panic::resume_unwind(panic);
            }
        }
        for handler in self.handlers.drain(..) {
            if let Err(panic) = handler.join() {
                std::panic::resume_unwind(panic);
            }
        }
        if let Some(engine) = self.engine.take() {
            engine.shutdown();
        }
    }
}

/// Sets the stop flag and wakes the accept loop with a loopback connection.
fn request_shutdown(shared: &NetShared) {
    if shared.stop.swap(true, Ordering::AcqRel) {
        return; // already requested; the nudge was sent
    }
    // A throwaway connection unblocks `TcpListener::accept`; the loop then
    // observes the flag and exits. Failure is fine — the listener may
    // already be gone.
    let _ = TcpStream::connect(shared.local_addr);
}

fn accept_loop(shared: &NetShared, listener: &TcpListener, conn_tx: &mpsc::Sender<TcpStream>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::Acquire) {
                    return; // dropping conn_tx drains the handler pool
                }
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(_) => {
                // Transient accept errors (aborted handshakes) are retried;
                // a stop request still wins.
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

/// One pool thread: service queued connections until the queue closes.
fn handler_loop(shared: &NetShared, conn_rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // Take ONE connection while holding the lock, then release it so
        // sibling handlers can pick up further connections concurrently.
        let stream = {
            let queue = conn_rx.lock().expect("connection queue lock");
            match queue.recv() {
                Ok(stream) => stream,
                Err(_) => return, // accept loop gone and queue drained
            }
        };
        // Per-connection failures never take the handler down.
        let _ = serve_connection(shared, stream);
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
    }
}

/// What the connection's reader hands its reply writer, in request order.
enum Outgoing {
    /// A reply that is already complete (stats, health, errors, acks).
    Ready(Frame),
    /// Predictions already submitted to the micro-batcher; the writer waits
    /// for them and builds the `Labels` (or error) reply.
    Deferred {
        id: u64,
        pendings: Vec<ff_serve::PendingPrediction>,
    },
}

/// Runs one connection's framed request loop to completion.
///
/// The loop is split across two threads so clients can **pipeline**: the
/// reader decodes frames and *submits* predictions to the micro-batcher
/// without waiting ([`ff_serve::ServeHandle::submit`]), while a
/// per-connection writer thread awaits the pending replies **in request
/// order** and writes them back. A wave of pipelined `Predict` frames is
/// therefore entirely in the batch queue before the first reply is due —
/// rows from one wave (and from other connections) coalesce into shared
/// GEMM batches instead of being served one blocking call at a time.
fn serve_connection(shared: &NetShared, stream: TcpStream) -> Result<()> {
    let max = shared.config.max_frame_bytes;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let writer = std::io::BufWriter::new(stream);

    let (out_tx, out_rx) = mpsc::channel::<Outgoing>();
    let writer_alive = Arc::new(AtomicBool::new(true));
    let writer_thread = {
        let alive = Arc::clone(&writer_alive);
        std::thread::Builder::new()
            .name("ff-net-reply".to_string())
            .spawn(move || reply_writer_loop(writer, out_rx, max, &alive))
            .expect("spawning the reply writer cannot fail")
    };
    let outcome = connection_reader_loop(shared, &mut reader, &out_tx, &writer_alive);
    drop(out_tx); // writer drains queued replies, then exits
    if let Err(panic) = writer_thread.join() {
        std::panic::resume_unwind(panic);
    }
    outcome
}

/// What one attempt to fill a buffer from the socket produced.
enum Fill {
    /// The buffer is completely filled.
    Done,
    /// Clean EOF before the first byte of the buffer.
    Eof,
    /// Read timeout with nothing of this frame consumed — an idle tick the
    /// caller uses to poll the stop flag.
    Idle,
    /// Shutdown was requested while a frame was partially read.
    Aborted,
}

/// Fills `buf` from the socket with frame-aware timeout semantics.
///
/// Read timeouts are only an *idle* signal when nothing of the current
/// frame has been consumed (`frame_started == false` and zero bytes
/// filled). Once a frame has started, a timeout means the sender stalled
/// mid-frame — the bytes already consumed must not be discarded, so the
/// read **resumes** (checking the stop flag each tick) instead of
/// returning; anything else would desynchronize the length-prefixed
/// stream. A stalled connection therefore occupies its handler exactly
/// like an idle one (the pool bounds both), and shutdown still interrupts
/// it within one timeout tick.
fn fill_frame_bytes(
    reader: &mut impl std::io::Read,
    buf: &mut [u8],
    shared: &NetShared,
    frame_started: bool,
) -> Result<Fill> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && !frame_started {
                    Ok(Fill::Eof)
                } else {
                    Err(NetError::Closed) // EOF mid-frame
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && !frame_started {
                    return Ok(Fill::Idle);
                }
                if shared.stop.load(Ordering::Acquire) {
                    return Ok(Fill::Aborted);
                }
                // Mid-frame stall (slow sender / retransmit): resume.
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Done)
}

/// The reader half of [`serve_connection`].
fn connection_reader_loop(
    shared: &NetShared,
    reader: &mut impl std::io::Read,
    out_tx: &mpsc::Sender<Outgoing>,
    writer_alive: &AtomicBool,
) -> Result<()> {
    let max = shared.config.max_frame_bytes;
    loop {
        if !writer_alive.load(Ordering::Acquire) {
            return Ok(()); // peer stopped reading replies; stop serving it
        }
        let mut len_bytes = [0u8; 4];
        match fill_frame_bytes(reader, &mut len_bytes, shared, false)? {
            Fill::Done => {}
            Fill::Eof | Fill::Aborted => return Ok(()),
            Fill::Idle => {
                if shared.stop.load(Ordering::Acquire) {
                    return Ok(()); // shutdown poll tick
                }
                continue; // idle connection: keep waiting
            }
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > max {
            // The stream cannot be resynchronized past an unread giant
            // frame: answer once, then close.
            let _ = out_tx.send(Outgoing::Ready(Frame::Error {
                id: 0,
                code: ErrorCode::FrameTooLarge,
                message: format!("frame of {len} bytes exceeds the {max}-byte limit"),
            }));
            return Ok(());
        }
        let mut bytes = vec![0u8; len];
        match fill_frame_bytes(reader, &mut bytes, shared, true)? {
            Fill::Done => {}
            Fill::Eof | Fill::Idle | Fill::Aborted => return Ok(()),
        }
        let frame = match decode_frame(&bytes) {
            Ok(frame) => frame,
            Err(error) => {
                let _ = out_tx.send(Outgoing::Ready(Frame::Error {
                    id: 0,
                    code: ErrorCode::Protocol,
                    message: error.to_string(),
                }));
                return Ok(());
            }
        };
        let shutdown_after = matches!(frame, Frame::Shutdown { .. });
        let outgoing = handle_request(shared, frame);
        if out_tx.send(outgoing).is_err() {
            return Ok(()); // writer gone (write failure): close
        }
        if shutdown_after {
            request_shutdown(shared);
            return Ok(());
        }
        if shared.stop.load(Ordering::Acquire) {
            // A busy connection must notice shutdown between frames, not
            // only on idle ticks — already-submitted replies still drain
            // through the writer before the socket closes.
            return Ok(());
        }
    }
}

/// The writer half of [`serve_connection`]: awaits deferred predictions in
/// request order and writes every reply frame.
fn reply_writer_loop(
    mut writer: impl std::io::Write,
    out_rx: mpsc::Receiver<Outgoing>,
    max_frame_bytes: usize,
    alive: &AtomicBool,
) {
    for outgoing in out_rx {
        let frame = match outgoing {
            Outgoing::Ready(frame) => frame,
            Outgoing::Deferred { id, pendings } => {
                let mut labels = Vec::with_capacity(pendings.len());
                let mut first_error = None;
                for pending in pendings {
                    match pending.wait() {
                        Ok(prediction) => labels.push(prediction.label as u32),
                        Err(error) => {
                            first_error.get_or_insert(error);
                        }
                    }
                }
                match first_error {
                    None => Frame::Labels { id, labels },
                    Some(error) => error_reply(id, &error),
                }
            }
        };
        if write_frame(&mut writer, &frame, max_frame_bytes).is_err() {
            break; // peer gone; reader observes `alive` and closes
        }
    }
    alive.store(false, Ordering::Release);
}

/// Turns one request frame into its outgoing reply, submitting predictions
/// to the micro-batcher without blocking (replies never fail to build;
/// engine errors become typed error frames).
fn handle_request(shared: &NetShared, frame: Frame) -> Outgoing {
    let id = frame.id();
    match frame {
        Frame::Predict { id, features } => match shared.handle.submit(&features) {
            Ok(pending) => Outgoing::Deferred {
                id,
                pendings: vec![pending],
            },
            Err(error) => Outgoing::Ready(error_reply(id, &error)),
        },
        Frame::PredictBatch { id, cols, data } => {
            let mut pendings = Vec::with_capacity(data.len() / cols as usize);
            for row in data.chunks_exact(cols as usize) {
                match shared.handle.submit(row) {
                    Ok(pending) => pendings.push(pending),
                    Err(error) => return Outgoing::Ready(error_reply(id, &error)),
                }
            }
            Outgoing::Deferred { id, pendings }
        }
        Frame::Stats { id } => Outgoing::Ready(Frame::StatsReply {
            id,
            stats: shared.handle.stats().into(),
        }),
        Frame::Health { id } => {
            let model = shared.handle.model();
            Outgoing::Ready(Frame::HealthReply {
                id,
                input_features: model.input_features() as u32,
                num_classes: model.num_classes() as u32,
                mode: match shared.config.serve.mode {
                    ServeMode::Logits => WireMode::Logits,
                    ServeMode::Goodness => WireMode::Goodness,
                },
            })
        }
        Frame::Shutdown { id } => Outgoing::Ready(Frame::ShutdownAck { id }),
        // A reply frame arriving at the server is a protocol violation.
        other => Outgoing::Ready(Frame::Error {
            id,
            code: ErrorCode::Protocol,
            message: format!("server received a non-request frame ({other:?})"),
        }),
    }
}

fn error_reply(id: u64, error: &ServeError) -> Frame {
    let code = match error {
        ServeError::BadRequest { .. } => ErrorCode::BadRequest,
        ServeError::ServerClosed => ErrorCode::ServerClosed,
        _ => ErrorCode::Internal,
    };
    Frame::Error {
        id,
        code,
        message: error.to_string(),
    }
}

fn serve_to_net(error: ServeError) -> NetError {
    NetError::Remote {
        code: ErrorCode::Internal,
        message: error.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_models::small_mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> FrozenModel {
        let mut rng = StdRng::seed_from_u64(5);
        FrozenModel::freeze(&small_mlp(8, &[6], 3, &mut rng), 3).unwrap()
    }

    #[test]
    fn bind_validates_config() {
        for bad in [
            NetConfig {
                conn_threads: 0,
                ..NetConfig::default()
            },
            NetConfig {
                max_frame_bytes: 8,
                ..NetConfig::default()
            },
            NetConfig {
                read_timeout: Duration::ZERO,
                ..NetConfig::default()
            },
        ] {
            assert!(NetServer::bind(model(), "127.0.0.1:0", bad).is_err());
        }
    }

    #[test]
    fn binds_an_ephemeral_port_and_shuts_down() {
        let server = NetServer::bind(model(), "127.0.0.1:0", NetConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert!(!server.is_shutting_down());
        // The in-process handle answers without any socket.
        assert!(server.handle().predict(&[0.1; 8]).is_ok());
        server.shutdown();
    }
}
