//! Deterministic fault injection for chaos-testing the `FF8P` stack.
//!
//! [`FaultyStream`] wraps any `Read + Write` transport and injects faults
//! drawn from a seeded [`FaultPlan`]: short reads/writes (the kernel's
//! prerogative, exercised on demand), stalls (slow peers), byte corruption
//! (broken middleboxes) and hard cuts (peer death mid-frame). The decision
//! for operation *k* is a pure function of `(plan.seed, k)` — not of
//! wall-clock time or global RNG state — so a chaos run replays the same
//! injected-fault schedule every time, and a failure reproduces from
//! nothing but its seed.
//!
//! Every injected fault is appended to a shared [`FaultLog`], which tests
//! assert against (and print on failure, turning "flaky hang" into "ops 17
//! was cut mid-frame").
//!
//! This module is **test and bench infrastructure**: the server never
//! wraps its own sockets in it. It lives in the library (rather than a
//! test helper) so the chaos suite, the bench harness and downstream
//! consumers share one implementation.
//!
//! # Examples
//!
//! ```
//! use ff_net::fault::{FaultPlan, FaultyStream};
//! use std::io::{Read, Write};
//!
//! let plan = FaultPlan {
//!     short_read: 1.0, // every read is truncated
//!     ..FaultPlan::benign(7)
//! };
//! let transport = std::io::Cursor::new(b"abcdef".to_vec());
//! let mut stream = FaultyStream::new(transport, plan);
//! let mut buf = [0u8; 6];
//! let n = stream.read(&mut buf).unwrap();
//! assert!(n < 6, "short read injected");
//! assert!(!stream.log().events().is_empty());
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Probabilities and parameters of the injected faults. Each probability
/// is evaluated independently per I/O operation from the seeded decision
/// stream; `0.0` disables a fault kind, `1.0` forces it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the decision stream — the whole fault schedule derives from
    /// this and the operation index.
    pub seed: u64,
    /// Probability a read is truncated to a random prefix of the buffer.
    pub short_read: f64,
    /// Probability a write only accepts a random prefix of the buffer.
    pub short_write: f64,
    /// Probability an operation first sleeps for [`FaultPlan::stall_for`].
    pub stall: f64,
    /// Stall duration (keep small in tests; the point is to land inside
    /// the peer's timeout windows, not to wait them out).
    pub stall_for: Duration,
    /// Probability one byte of a successful read is flipped.
    pub corrupt_read: f64,
    /// Hard-cut the transport at this operation index: the operation (and
    /// all later ones) fail with `ConnectionReset`, like a peer dying
    /// mid-frame.
    pub cut_at_op: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing — the identity wrapper, for differential
    /// runs against a chaotic plan with the same seed.
    pub fn benign(seed: u64) -> Self {
        FaultPlan {
            seed,
            short_read: 0.0,
            short_write: 0.0,
            stall: 0.0,
            stall_for: Duration::from_millis(1),
            corrupt_read: 0.0,
            cut_at_op: None,
        }
    }

    /// A plan that fragments and stalls traffic heavily but never corrupts
    /// or cuts it: the protocol must still deliver every frame intact.
    pub fn rough_network(seed: u64) -> Self {
        FaultPlan {
            short_read: 0.7,
            short_write: 0.7,
            stall: 0.2,
            stall_for: Duration::from_millis(2),
            ..FaultPlan::benign(seed)
        }
    }
}

/// One injected fault, tagged with the operation index it fired at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A read was truncated before hitting the transport.
    ShortRead {
        /// Operation index.
        op: u64,
        /// Bytes the caller asked for.
        requested: usize,
        /// Bytes the wrapper allowed through.
        allowed: usize,
    },
    /// A write only accepted a prefix.
    ShortWrite {
        /// Operation index.
        op: u64,
        /// Bytes the caller offered.
        requested: usize,
        /// Bytes the wrapper accepted.
        allowed: usize,
    },
    /// The operation slept before proceeding.
    Stall {
        /// Operation index.
        op: u64,
    },
    /// One byte of a read was flipped after the transport filled it.
    CorruptByte {
        /// Operation index.
        op: u64,
        /// Offset of the flipped byte within this read's result.
        offset: usize,
    },
    /// The transport was hard-cut at this operation.
    Cut {
        /// Operation index.
        op: u64,
    },
}

/// Shared, cloneable log of injected faults — keep a clone before moving
/// the [`FaultyStream`] into a client or thread.
#[derive(Debug, Clone, Default)]
pub struct FaultLog(Arc<Mutex<Vec<FaultEvent>>>);

impl FaultLog {
    fn push(&self, event: FaultEvent) {
        self.0.lock().expect("fault log lock").push(event);
    }

    /// Snapshot of every fault injected so far.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.0.lock().expect("fault log lock").clone()
    }
}

/// A `Read + Write` transport wrapper injecting faults per [`FaultPlan`];
/// see the [module docs](self).
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    op: u64,
    log: FaultLog,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` with the given plan, starting at operation 0.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyStream {
            inner,
            plan,
            op: 0,
            log: FaultLog::default(),
        }
    }

    /// A clone-handle onto the fault log.
    pub fn log(&self) -> FaultLog {
        self.log.clone()
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Unwraps the transport, dropping the fault layer.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The deterministic decision stream for operation `op`: seeded from
    /// `(plan.seed, op)` alone, with a SplitMix64-style mix so consecutive
    /// op indices decorrelate. Draw order within an operation is fixed, so
    /// the schedule is a pure function of the plan.
    fn decisions(&self, op: u64) -> StdRng {
        StdRng::seed_from_u64(self.plan.seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Runs the per-operation preamble (cut, stall) shared by reads and
    /// writes; returns the operation's index and decision stream.
    fn begin_op(&mut self) -> io::Result<(u64, StdRng)> {
        let op = self.op;
        self.op += 1;
        if self.plan.cut_at_op.is_some_and(|cut| op >= cut) {
            self.log.push(FaultEvent::Cut { op });
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected cut",
            ));
        }
        let mut rng = self.decisions(op);
        if rng.gen_range(0.0..1.0) < self.plan.stall {
            self.log.push(FaultEvent::Stall { op });
            std::thread::sleep(self.plan.stall_for);
        }
        Ok((op, rng))
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let (op, mut rng) = self.begin_op()?;
        let mut allowed = buf.len();
        if buf.len() > 1 && rng.gen_range(0.0..1.0) < self.plan.short_read {
            allowed = rng.gen_range(1..buf.len());
            self.log.push(FaultEvent::ShortRead {
                op,
                requested: buf.len(),
                allowed,
            });
        }
        let n = self.inner.read(&mut buf[..allowed])?;
        if n > 0 && rng.gen_range(0.0..1.0) < self.plan.corrupt_read {
            let offset = rng.gen_range(0..n);
            buf[offset] ^= 0xA5;
            self.log.push(FaultEvent::CorruptByte { op, offset });
        }
        Ok(n)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let (op, mut rng) = self.begin_op()?;
        let mut allowed = buf.len();
        if buf.len() > 1 && rng.gen_range(0.0..1.0) < self.plan.short_write {
            allowed = rng.gen_range(1..buf.len());
            self.log.push(FaultEvent::ShortWrite {
                op,
                requested: buf.len(),
                allowed,
            });
        }
        self.inner.write(&buf[..allowed])
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Drives a fixed op sequence (reads of varying sizes, then writes)
    /// over an in-memory transport and returns the fault log. In-memory so
    /// the op sequence — and therefore the schedule — is fully determined
    /// by the plan, with no OS-dependent read sizes in the loop.
    fn drive(plan: FaultPlan) -> Vec<FaultEvent> {
        let data = (0u8..=255).collect::<Vec<_>>();
        let mut stream = FaultyStream::new(Cursor::new(data), plan);
        let log = stream.log();
        let mut buf = [0u8; 17];
        for _ in 0..8 {
            let _ = stream.read(&mut buf);
        }
        let payload = [7u8; 23];
        for _ in 0..8 {
            let _ = stream.write(&payload);
        }
        log.events()
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan {
            corrupt_read: 0.2,
            cut_at_op: Some(14),
            ..FaultPlan::rough_network(99)
        };
        let first = drive(plan);
        let second = drive(plan);
        assert_eq!(first, second, "fault schedule must be reproducible");
        assert!(!first.is_empty());
        assert!(first.contains(&FaultEvent::Cut { op: 14 }));
    }

    #[test]
    fn different_seeds_differ() {
        let a = drive(FaultPlan::rough_network(1));
        let b = drive(FaultPlan::rough_network(2));
        assert_ne!(a, b, "seeds must decorrelate schedules");
    }

    #[test]
    fn benign_plan_is_the_identity() {
        let data = b"hello world".to_vec();
        let mut stream = FaultyStream::new(Cursor::new(data.clone()), FaultPlan::benign(5));
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert!(stream.log().events().is_empty());
    }

    #[test]
    fn short_reads_fragment_but_do_not_lose_bytes() {
        let data = (0u8..=255).collect::<Vec<_>>();
        let plan = FaultPlan {
            short_read: 1.0,
            ..FaultPlan::benign(3)
        };
        let mut stream = FaultyStream::new(Cursor::new(data.clone()), plan);
        let log = stream.log();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        assert_eq!(out, data, "fragmentation must preserve the byte stream");
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e, FaultEvent::ShortRead { .. })));
    }

    #[test]
    fn cut_fails_every_operation_from_the_cut_point() {
        let plan = FaultPlan {
            cut_at_op: Some(2),
            ..FaultPlan::benign(0)
        };
        let mut stream = FaultyStream::new(Cursor::new(vec![0u8; 64]), plan);
        let mut buf = [0u8; 8];
        assert!(stream.read(&mut buf).is_ok());
        assert!(stream.read(&mut buf).is_ok());
        for _ in 0..3 {
            let err = stream.read(&mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        }
    }

    #[test]
    fn corruption_flips_exactly_one_logged_byte() {
        let data = vec![0u8; 32];
        let plan = FaultPlan {
            corrupt_read: 1.0,
            ..FaultPlan::benign(11)
        };
        let mut stream = FaultyStream::new(Cursor::new(data), plan);
        let log = stream.log();
        let mut buf = [0u8; 32];
        let n = stream.read(&mut buf).unwrap();
        let flipped: Vec<usize> = (0..n).filter(|&i| buf[i] != 0).collect();
        assert_eq!(flipped.len(), 1);
        let events = log.events();
        assert!(matches!(
            events[..],
            [FaultEvent::CorruptByte { offset, .. }] if offset == flipped[0]
        ));
    }

    #[test]
    fn short_writes_accept_a_prefix() {
        let plan = FaultPlan {
            short_write: 1.0,
            ..FaultPlan::benign(21)
        };
        let mut stream = FaultyStream::new(Cursor::new(Vec::new()), plan);
        let n = stream.write(&[1u8; 100]).unwrap();
        assert!((1..100).contains(&n));
        assert_eq!(stream.get_ref().get_ref().len(), n, "prefix really written");
        // write_all still completes by looping, like real socket callers.
        let mut stream = FaultyStream::new(Cursor::new(Vec::new()), plan);
        stream.write_all(&[2u8; 100]).unwrap();
        assert_eq!(stream.into_inner().into_inner(), vec![2u8; 100]);
    }
}
