//! Client-side retry policy: seeded exponential backoff with full jitter,
//! deadline-aware give-up.
//!
//! Retrying is only safe for **idempotent** requests — Predict, Stats and
//! Health compute the same answer no matter how many times they run — and
//! only for failures classified retryable by the shared table behind
//! [`NetError::is_retryable`](crate::NetError::is_retryable): transport
//! faults (the server may have restarted) and transient server states
//! (`Overloaded`, `Draining`, `ServerClosed`). Request defects and expired
//! deadlines fail immediately; retrying them would just lose time twice.
//!
//! Backoff is exponential with **full jitter** (uniform in `0..=cap`, cap
//! doubling per attempt): under overload, jitter decorrelates the retry
//! storm that synchronized clients would otherwise re-aim at the server.
//! The jitter stream is seeded per request from
//! [`RetryPolicy::jitter_seed`], so a failure sequence replays bit-for-bit
//! in tests. A server's retry-after hint raises the floor of the drawn
//! delay; a request deadline gives the whole loop a hard stop — the client
//! gives up rather than sleep past the point where the answer is worthless.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// When and how a [`Client`](crate::Client) retries idempotent requests.
///
/// The default policy is **disabled** (`max_attempts == 1`): opting into
/// retries is an application decision — it changes tail latency and load
/// under failure. [`RetryPolicy::standard`] is a reasonable starting point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff cap before the first retry; doubles per further attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter stream. Each request derives its own
    /// deterministic stream from this seed and the request id, so retry
    /// timing is reproducible run-to-run.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// An enabled policy: 4 attempts, 5 ms base cap doubling to a 250 ms
    /// ceiling, jittered from `jitter_seed`.
    pub fn standard(jitter_seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 4,
            jitter_seed,
            ..RetryPolicy::default()
        }
    }

    /// `true` when this policy ever retries.
    pub fn is_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Starts one request's retry clock: a seeded jitter stream (derived
    /// from the request id) plus the optional hard deadline.
    pub(crate) fn schedule(&self, request_id: u64, deadline: Option<Instant>) -> RetrySchedule {
        RetrySchedule {
            policy: *self,
            // SplitMix64-style mix so consecutive request ids don't yield
            // correlated xoshiro seeds.
            rng: StdRng::seed_from_u64(
                self.jitter_seed ^ request_id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
            deadline,
            failures: 0,
        }
    }
}

/// Per-request retry state; see [`RetryPolicy::schedule`].
pub(crate) struct RetrySchedule {
    policy: RetryPolicy,
    rng: StdRng,
    deadline: Option<Instant>,
    failures: u32,
}

impl RetrySchedule {
    /// Records one failure and returns how long to sleep before the next
    /// attempt, or `None` to give up: attempts exhausted, or the backoff
    /// would land past the request deadline (sleeping through the deadline
    /// only to fail again helps nobody).
    ///
    /// `hint` is the server's retry-after suggestion; it raises the floor
    /// of the jittered delay (still capped at `max_backoff`).
    pub(crate) fn next_backoff(&mut self, hint: Option<Duration>) -> Option<Duration> {
        self.failures += 1;
        if self.failures >= self.policy.max_attempts {
            return None;
        }
        // Full jitter: uniform in 0..=cap, cap = base << (failures - 1).
        let cap = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << (self.failures - 1).min(16))
            .min(self.policy.max_backoff);
        let jittered = Duration::from_nanos(
            self.rng
                .gen_range(0..=cap.as_nanos().min(u64::MAX as u128) as u64),
        );
        let delay = jittered
            .max(hint.unwrap_or(Duration::ZERO))
            .min(self.policy.max_backoff);
        if let Some(deadline) = self.deadline {
            if Instant::now() + delay >= deadline {
                return None;
            }
        }
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_never_retries() {
        let policy = RetryPolicy::default();
        assert!(!policy.is_enabled());
        assert_eq!(policy.schedule(1, None).next_backoff(None), None);
    }

    #[test]
    fn backoff_caps_double_and_respect_the_ceiling() {
        let policy = RetryPolicy {
            max_attempts: 16,
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 7,
        };
        let mut schedule = policy.schedule(1, None);
        let mut caps = Vec::new();
        while let Some(delay) = schedule.next_backoff(None) {
            caps.push(delay);
        }
        assert_eq!(caps.len(), 15, "max_attempts - 1 retries");
        for (i, delay) in caps.iter().enumerate() {
            let cap = Duration::from_millis(4)
                .saturating_mul(1 << i.min(16))
                .min(Duration::from_millis(20));
            assert!(*delay <= cap, "attempt {i}: {delay:?} > cap {cap:?}");
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_request() {
        let policy = RetryPolicy::standard(42);
        let run = |id| {
            let mut schedule = policy.schedule(id, None);
            std::iter::from_fn(|| schedule.next_backoff(None)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9), "same seed + id ⇒ same delays");
        assert_ne!(run(9), run(10), "different requests decorrelate");
        let other = RetryPolicy::standard(43);
        let mut schedule = other.schedule(9, None);
        let other_run: Vec<_> = std::iter::from_fn(|| schedule.next_backoff(None)).collect();
        assert_ne!(run(9), other_run, "different seeds decorrelate");
    }

    #[test]
    fn server_hint_raises_the_floor() {
        let policy = RetryPolicy::standard(3);
        let hint = Duration::from_millis(30);
        let mut schedule = policy.schedule(5, None);
        while let Some(delay) = schedule.next_backoff(Some(hint)) {
            assert!(delay >= hint);
            assert!(delay <= policy.max_backoff);
        }
    }

    #[test]
    fn gives_up_instead_of_sleeping_past_the_deadline() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_secs(5),
            max_backoff: Duration::from_secs(5),
            jitter_seed: 1,
        };
        // Deadline far closer than any plausible backoff floor.
        let deadline = Instant::now() + Duration::from_micros(1);
        let mut schedule = policy.schedule(1, Some(deadline));
        // The hint forces delay >= 1s, which must overshoot the deadline.
        assert_eq!(schedule.next_backoff(Some(Duration::from_secs(1))), None);
    }
}
