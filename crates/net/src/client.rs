//! The blocking `FF8P` client: connect/reconnect, single predictions,
//! one-frame batches, pipelined request waves, deadline stamping and
//! opt-in retries over one connection.

use crate::protocol::{
    read_frame, write_frame_meta, Frame, FrameMeta, WireHealthState, WireMode, WireStats,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::retry::RetryPolicy;
use crate::{NetError, Result};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side socket, deadline, addressing and retry configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// How long to wait for a reply before failing with
    /// [`NetError::Timeout`].
    pub read_timeout: Duration,
    /// Per-write timeout.
    pub write_timeout: Duration,
    /// Upper bound on one frame's length, both directions (oversized
    /// requests fail locally before anything hits the wire).
    pub max_frame_bytes: usize,
    /// Per-request latency budget. Each prediction is stamped with the
    /// *remaining* budget when it hits the wire, so the server can refuse
    /// or shed it once an answer would arrive too late; the same budget
    /// bounds retries. `None` (the default) means unbounded.
    pub deadline: Option<Duration>,
    /// Which registry model this client's requests address
    /// ([`ff_serve::DEFAULT_MODEL_ID`] by default). Carried in every
    /// request frame's version-3 header; `Health` reports the addressed
    /// model too.
    pub model: u16,
    /// Bearer token presented on every request. Required when the server
    /// configured an [`crate::AuthPolicy`]; an unknown token (or `None`
    /// against a closed server) yields [`crate::ErrorCode::Unauthorized`].
    pub token: Option<String>,
    /// Retry policy for idempotent requests (Predict / Stats / Health).
    /// Disabled by default; see [`RetryPolicy::standard`].
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            deadline: None,
            model: ff_serve::DEFAULT_MODEL_ID,
            token: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// The identity a server reports in its health reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Features a request row must provide.
    pub input_features: usize,
    /// Number of classes the model scores.
    pub num_classes: usize,
    /// Swap generation of the addressed registry model: starts at 1 and
    /// bumps on every hot-swap, so a poller can detect a rollout landing
    /// (pre-version-3 servers report 0).
    pub model_version: u64,
    /// Classification mode the server runs.
    pub mode: WireMode,
    /// Lifecycle phase: [`WireHealthState::Draining`] once a graceful
    /// shutdown has started (version-1 servers always report
    /// [`WireHealthState::Ok`]).
    pub state: WireHealthState,
}

/// A blocking `FF8P` client over one TCP connection.
///
/// The connection is established lazily and **re-established
/// transparently**: any call that finds the connection gone (never opened,
/// or poisoned by an earlier I/O error) dials again first. An I/O failure
/// mid-call drops the connection and surfaces the error — the *next* call
/// (or the next retry attempt, when a [`RetryPolicy`] is enabled)
/// reconnects, so a restarted server needs no client-side ceremony. Replies
/// are matched to requests by the echoed frame id, and within a connection
/// the server answers strictly in order, which is what makes
/// [`Client::predict_pipelined`] safe.
///
/// With [`ClientConfig::retry`] enabled, idempotent requests (Predict /
/// Stats / Health) that fail **retryably** — transport faults, typed
/// `Overloaded` / `Draining` / `ServerClosed` replies — are retried with
/// seeded exponential backoff and jitter, honoring the server's retry-after
/// hint and giving up once [`ClientConfig::deadline`] could no longer be
/// met. Non-idempotent (`Shutdown`) and non-retryable failures surface
/// immediately.
///
/// See [`crate::NetServer`] for a runnable client/server example.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    connection: Option<Connection>,
    next_id: u64,
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Creates a client for `addr` with default timeouts and connects
    /// eagerly (so a wrong address fails here, not at the first request).
    ///
    /// # Errors
    ///
    /// Address-resolution and connect failures as [`NetError::Io`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`Client::connect`] with explicit socket configuration.
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self> {
        let addr = addr
            .to_socket_addrs()
            .map_err(NetError::from)?
            .next()
            .ok_or_else(|| NetError::Io {
                message: "address resolved to nothing".to_string(),
            })?;
        let mut client = Client {
            addr,
            config,
            connection: None,
            next_id: 1,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// The server address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drops any current connection and dials a fresh one.
    ///
    /// # Errors
    ///
    /// Connect failures as [`NetError::Io`].
    pub fn reconnect(&mut self) -> Result<()> {
        self.connection = None;
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        self.connection = Some(Connection {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        });
        Ok(())
    }

    /// Closes the connection (the next call would reconnect).
    pub fn close(&mut self) {
        self.connection = None;
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// This request's hard deadline, from [`ClientConfig::deadline`].
    fn request_deadline(&self) -> Option<Instant> {
        self.config.deadline.map(|budget| Instant::now() + budget)
    }

    /// Runs `attempt` under the configured retry policy: retryable
    /// failures back off (seeded jitter, server hint honored) and try
    /// again with a fresh request id; attempts stop when the policy is
    /// exhausted, the failure is not retryable, or the next backoff would
    /// overshoot `deadline`.
    fn retry_loop<T>(
        &mut self,
        deadline: Option<Instant>,
        mut attempt: impl FnMut(&mut Self, Option<Instant>) -> Result<T>,
    ) -> Result<T> {
        let mut schedule = self.config.retry.schedule(self.next_id, deadline);
        loop {
            match attempt(self, deadline) {
                Ok(value) => return Ok(value),
                Err(error) => {
                    if !error.is_retryable() {
                        return Err(error);
                    }
                    match schedule.next_backoff(error.retry_after()) {
                        Some(delay) => std::thread::sleep(delay),
                        None => return Err(error),
                    }
                }
            }
        }
    }

    /// Runs `op` on the live connection, reconnecting first if needed and
    /// poisoning the connection on any error so the next call starts clean.
    fn with_connection<T>(
        &mut self,
        op: impl FnOnce(&mut Connection, &ClientConfig) -> Result<T>,
    ) -> Result<T> {
        if self.connection.is_none() {
            self.reconnect()?;
        }
        let connection = self.connection.as_mut().expect("connection just ensured");
        match op(connection, &self.config) {
            Ok(value) => Ok(value),
            Err(error) => {
                // Remote errors leave the stream synchronized (the error
                // frame WAS the reply); everything else poisons it.
                if !matches!(error, NetError::Remote { .. }) {
                    self.connection = None;
                }
                Err(error)
            }
        }
    }

    /// Sends one request frame and returns the reply with the matching id.
    fn call(&mut self, request: Frame) -> Result<Frame> {
        let id = request.id();
        self.with_connection(|connection, config| {
            write_frame_meta(
                &mut connection.writer,
                &request,
                PROTOCOL_VERSION,
                &request_meta(config),
                config.max_frame_bytes,
            )?;
            expect_reply(connection, config, id)
        })
    }

    /// Classifies one sample and returns its label.
    ///
    /// # Errors
    ///
    /// Socket-level [`NetError`]s, or [`NetError::Remote`] carrying the
    /// server's typed error (e.g. [`crate::ErrorCode::BadRequest`] for a
    /// wrong feature count, [`crate::ErrorCode::Overloaded`] under load
    /// shedding). [`NetError::Timeout`] when the configured deadline
    /// expires before an attempt can be sent. Retryable failures are
    /// retried per [`ClientConfig::retry`] first.
    pub fn predict(&mut self, features: &[f32]) -> Result<usize> {
        let deadline = self.request_deadline();
        self.retry_loop(deadline, |client, deadline| {
            let id = client.fresh_id();
            let reply = client.call(Frame::Predict {
                id,
                deadline_micros: wire_deadline(deadline)?,
                features: features.to_vec(),
            })?;
            match reply {
                Frame::Labels { labels, .. } if labels.len() == 1 => Ok(labels[0] as usize),
                other => Err(unexpected_reply("one label", &other)),
            }
        })
    }

    /// Classifies a row-major `⌊data.len() / cols⌋ × cols` batch in one
    /// frame and returns the labels in row order.
    ///
    /// # Errors
    ///
    /// [`NetError::Frame`] when `cols` is zero or does not divide
    /// `data.len()`; otherwise as [`Client::predict`].
    pub fn predict_batch(&mut self, cols: usize, data: &[f32]) -> Result<Vec<usize>> {
        if cols == 0 || !data.len().is_multiple_of(cols) || data.is_empty() {
            return Err(NetError::Frame {
                message: format!(
                    "batch of {} values does not divide into positive rows of {cols}",
                    data.len()
                ),
            });
        }
        let rows = data.len() / cols;
        let deadline = self.request_deadline();
        self.retry_loop(deadline, |client, deadline| {
            let id = client.fresh_id();
            let reply = client.call(Frame::PredictBatch {
                id,
                deadline_micros: wire_deadline(deadline)?,
                cols: cols as u32,
                data: data.to_vec(),
            })?;
            match reply {
                Frame::Labels { labels, .. } if labels.len() == rows => {
                    Ok(labels.into_iter().map(|l| l as usize).collect())
                }
                other => Err(unexpected_reply("one label per row", &other)),
            }
        })
    }

    /// Classifies many samples by **pipelining**: every `Predict` frame is
    /// written before the first reply is read, so the server (which answers
    /// a connection's requests in order) keeps its micro-batcher fed while
    /// replies stream back. One connection, `rows.len()` round-trips of
    /// latency collapsed into roughly one.
    ///
    /// Each frame is stamped with the remaining deadline budget, but the
    /// wave is **not retried** as a whole — with many requests in flight,
    /// the caller decides what partial failure means.
    ///
    /// # Errors
    ///
    /// As [`Client::predict`]; the first failed reply fails the call.
    pub fn predict_pipelined<'r, I>(&mut self, rows: I) -> Result<Vec<usize>>
    where
        I: IntoIterator<Item = &'r [f32]>,
    {
        let deadline = self.request_deadline();
        let first_id = self.next_id;
        let mut count = 0u64;
        let outcome = self.with_connection(|connection, config| {
            let meta = request_meta(config);
            for features in rows {
                let frame = Frame::Predict {
                    id: first_id + count,
                    deadline_micros: wire_deadline(deadline)?,
                    features: features.to_vec(),
                };
                write_frame_meta(
                    &mut connection.writer,
                    &frame,
                    PROTOCOL_VERSION,
                    &meta,
                    config.max_frame_bytes,
                )?;
                count += 1;
            }
            let mut labels = Vec::with_capacity(count as usize);
            for offset in 0..count {
                match expect_reply(connection, config, first_id + offset)? {
                    Frame::Labels {
                        labels: mut one, ..
                    } if one.len() == 1 => {
                        labels.push(one.pop().expect("length checked") as usize);
                    }
                    other => return Err(unexpected_reply("one label", &other)),
                }
            }
            Ok(labels)
        });
        self.next_id = first_id + count;
        outcome
    }

    /// Reads the server's aggregate statistics.
    ///
    /// # Errors
    ///
    /// As [`Client::predict`].
    pub fn stats(&mut self) -> Result<WireStats> {
        let deadline = self.request_deadline();
        self.retry_loop(deadline, |client, _| {
            let id = client.fresh_id();
            match client.call(Frame::Stats { id })? {
                Frame::StatsReply { stats, .. } => Ok(*stats),
                other => Err(unexpected_reply("a stats reply", &other)),
            }
        })
    }

    /// Dumps up to `max` recent per-request traces from the server's
    /// flight recorder (0 = everything currently retained), together with
    /// the count of traces the recorder dropped under contention. Traces
    /// arrive oldest-first.
    ///
    /// # Errors
    ///
    /// As [`Client::predict`].
    pub fn trace_dump(&mut self, max: u32) -> Result<(u64, Vec<ff_serve::RequestTrace>)> {
        let deadline = self.request_deadline();
        self.retry_loop(deadline, |client, _| {
            let id = client.fresh_id();
            match client.call(Frame::TraceDump { id, max })? {
                Frame::TraceDumpReply {
                    dropped, traces, ..
                } => Ok((dropped, traces)),
                other => Err(unexpected_reply("a trace dump reply", &other)),
            }
        })
    }

    /// Reads the server's full metrics registry in its text exposition
    /// format — one `name kind value...` line per metric, sorted by name.
    ///
    /// # Errors
    ///
    /// As [`Client::predict`].
    pub fn metrics_dump(&mut self) -> Result<String> {
        let deadline = self.request_deadline();
        self.retry_loop(deadline, |client, _| {
            let id = client.fresh_id();
            match client.call(Frame::MetricsDump { id })? {
                Frame::MetricsDumpReply { text, .. } => Ok(text),
                other => Err(unexpected_reply("a metrics dump reply", &other)),
            }
        })
    }

    /// Probes the server's identity and liveness.
    ///
    /// # Errors
    ///
    /// As [`Client::predict`].
    pub fn health(&mut self) -> Result<ServerInfo> {
        let deadline = self.request_deadline();
        self.retry_loop(deadline, |client, _| {
            let id = client.fresh_id();
            match client.call(Frame::Health { id })? {
                Frame::HealthReply {
                    input_features,
                    num_classes,
                    model_version,
                    mode,
                    state,
                    ..
                } => Ok(ServerInfo {
                    input_features: input_features as usize,
                    num_classes: num_classes as usize,
                    model_version,
                    mode,
                    state,
                }),
                other => Err(unexpected_reply("a health reply", &other)),
            }
        })
    }

    /// Asks the server to shut down gracefully (drain, then close), waits
    /// for the acknowledgement and closes this client's connection. Never
    /// retried: shutdown is not idempotent from the caller's point of view.
    ///
    /// # Errors
    ///
    /// As [`Client::predict`].
    pub fn shutdown_server(&mut self) -> Result<()> {
        let id = self.fresh_id();
        let outcome = match self.call(Frame::Shutdown { id })? {
            Frame::ShutdownAck { .. } => Ok(()),
            other => Err(unexpected_reply("a shutdown ack", &other)),
        };
        self.close();
        outcome
    }
}

/// The version-3 request header this client stamps on every frame: the
/// addressed model and the configured bearer token.
fn request_meta(config: &ClientConfig) -> FrameMeta {
    FrameMeta {
        model_id: config.model,
        token: config.token.clone(),
    }
}

/// The remaining deadline budget as the wire's `u32` microseconds field
/// (0 = unbounded), or [`NetError::Timeout`] when the budget is already
/// spent — there is no point putting a dead request on the wire.
fn wire_deadline(deadline: Option<Instant>) -> Result<u32> {
    let Some(deadline) = deadline else {
        return Ok(0);
    };
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(NetError::Timeout);
    }
    Ok(remaining.as_micros().clamp(1, u32::MAX as u128) as u32)
}

/// Reads the next reply, validating the correlation id and unwrapping
/// error frames into [`NetError::Remote`].
fn expect_reply(connection: &mut Connection, config: &ClientConfig, id: u64) -> Result<Frame> {
    let reply = read_frame(&mut connection.reader, config.max_frame_bytes)?;
    if let Frame::Error {
        code,
        retry_after_millis,
        message,
        ..
    } = reply
    {
        return Err(NetError::Remote {
            code,
            message,
            retry_after: (retry_after_millis > 0)
                .then(|| Duration::from_millis(retry_after_millis.into())),
        });
    }
    if reply.id() != id {
        return Err(NetError::Frame {
            message: format!("reply id {} does not match request id {id}", reply.id()),
        });
    }
    if reply.is_request() {
        return Err(NetError::Frame {
            message: "peer sent a request frame where a reply was expected".to_string(),
        });
    }
    Ok(reply)
}

fn unexpected_reply(expected: &str, got: &Frame) -> NetError {
    NetError::Frame {
        message: format!("expected {expected}, got {got:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_to_nothing_fails_with_io_error() {
        // Port 1 on loopback is essentially never listening.
        let outcome = Client::connect("127.0.0.1:1");
        assert!(matches!(
            outcome.map(|_| ()),
            Err(NetError::Io { .. }) | Err(NetError::Timeout) | Err(NetError::Closed)
        ));
    }

    #[test]
    fn batch_geometry_is_validated_locally() {
        // Validation fires before any connection is touched, so a client
        // pointed at a dead address still reports the local error…
        // (construct without the eager connect by dialing a live listener).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = Client::connect(listener.local_addr().unwrap()).unwrap();
        assert!(matches!(
            client.predict_batch(0, &[]),
            Err(NetError::Frame { .. })
        ));
        assert!(matches!(
            client.predict_batch(3, &[0.0; 4]),
            Err(NetError::Frame { .. })
        ));
    }

    #[test]
    fn wire_deadlines_encode_the_remaining_budget() {
        assert_eq!(wire_deadline(None), Ok(0));
        let soon = Instant::now() + Duration::from_millis(500);
        let micros = wire_deadline(Some(soon)).unwrap();
        assert!(micros > 0 && micros <= 500_000);
        let spent = Instant::now() - Duration::from_millis(1);
        assert_eq!(wire_deadline(Some(spent)), Err(NetError::Timeout));
    }

    #[test]
    fn an_expired_deadline_fails_before_dialing() {
        // A client whose budget is already spent must not even connect: the
        // listener below never accepts, so reaching it would hang.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = Client::connect(listener.local_addr().unwrap()).unwrap();
        client.config.deadline = Some(Duration::ZERO);
        assert_eq!(client.predict(&[0.0; 4]), Err(NetError::Timeout));
    }
}
