//! The typed error surface of the network crate.
//!
//! Frame decoding never panics: every way bytes off the wire can be
//! malformed maps to a [`NetError`] variant, which the truncation and
//! byte-flip fuzz suites exercise exhaustively (mirroring the `FF8S`/`FF8C`
//! loaders). I/O failures are carried as rendered text so `NetError` stays
//! `Clone + PartialEq` like every other error type in the workspace.
//!
//! Error **codes** are one table ([`ErrorCode`]): wire byte, display name
//! and retry classification live in a single row per code, so the server's
//! replies and the client's retry policy can never disagree about which
//! failures are safe to retry.

use ff_codec::CodecError;
use std::fmt;
use std::time::Duration;

/// Machine-readable error category carried by an `FF8P` error reply, so a
/// client can react (retry, fix the request, give up) without parsing the
/// human-readable message.
///
/// Every code's wire byte, display name and retryability come from one
/// shared table — the single source of truth for both sides of the
/// connection. "Retryable" means the failure is **transient server state**
/// (overload, drain, restart), so re-sending an *idempotent* request
/// (Predict / Stats / Health) may succeed; request defects
/// ([`ErrorCode::BadRequest`], [`ErrorCode::Protocol`], ...) and expired
/// budgets ([`ErrorCode::DeadlineExceeded`]) never are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request does not match the served model (wrong feature count,
    /// zero rows, ...).
    BadRequest,
    /// The inference engine behind the front-end has shut down.
    ServerClosed,
    /// The request frame declared a length above the server's frame limit.
    FrameTooLarge,
    /// The server could not decode the request frame.
    Protocol,
    /// Any other server-side failure.
    Internal,
    /// The admission queue is full: the request was refused *before*
    /// queuing so the server stays responsive. Retry after the hint carried
    /// by the error reply.
    Overloaded,
    /// The request's deadline budget expired before (or while) the server
    /// could serve it; the answer would be worthless, so none was computed.
    DeadlineExceeded,
    /// The server is draining for shutdown: in-flight requests finish, new
    /// ones are refused. Another instance (or a restart) may serve a retry.
    Draining,
    /// The request's auth token is missing, wrong, or not authorized for
    /// the addressed model. Retrying with the same credentials cannot
    /// succeed.
    Unauthorized,
    /// The request addressed a model id the server's registry does not
    /// hold. Deterministic for a given server configuration, so never
    /// retried.
    UnknownModel,
}

/// One row per code: variant, wire byte, display name, retryable.
const CODE_TABLE: &[(ErrorCode, u8, &str, bool)] = &[
    (ErrorCode::BadRequest, 1, "bad request", false),
    (ErrorCode::ServerClosed, 2, "server closed", true),
    (ErrorCode::FrameTooLarge, 3, "frame too large", false),
    (ErrorCode::Protocol, 4, "protocol error", false),
    (ErrorCode::Internal, 5, "internal error", false),
    (ErrorCode::Overloaded, 6, "overloaded", true),
    (ErrorCode::DeadlineExceeded, 7, "deadline exceeded", false),
    (ErrorCode::Draining, 8, "draining", true),
    (ErrorCode::Unauthorized, 9, "unauthorized", false),
    (ErrorCode::UnknownModel, 10, "unknown model", false),
];

impl ErrorCode {
    /// Every defined code, in wire order (shared by the fuzz suites).
    pub fn all() -> impl Iterator<Item = ErrorCode> {
        CODE_TABLE.iter().map(|row| row.0)
    }

    fn row(self) -> &'static (ErrorCode, u8, &'static str, bool) {
        CODE_TABLE
            .iter()
            .find(|row| row.0 == self)
            .expect("every ErrorCode variant has a table row")
    }

    /// Wire encoding of this code.
    pub fn to_wire(self) -> u8 {
        self.row().1
    }

    /// Decodes a wire byte; unknown codes are `None` (the frame decoder
    /// turns that into a typed [`NetError::Frame`]).
    pub fn from_wire(code: u8) -> Option<Self> {
        CODE_TABLE.iter().find(|row| row.1 == code).map(|row| row.0)
    }

    /// `true` when re-sending an **idempotent** request may succeed — the
    /// shared classification used by server replies and the client's
    /// [`crate::RetryPolicy`].
    pub fn is_retryable(self) -> bool {
        self.row().3
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.row().2)
    }
}

/// Error type for `FF8P` framing, the network server and the client.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A frame failed to decode (bad magic/version, truncation, structural
    /// corruption) — wraps the shared codec error.
    Codec(CodecError),
    /// A frame decoded structurally but violates the protocol (unknown
    /// frame kind, zero rows, reply id mismatch, ...).
    Frame {
        /// What is wrong with the frame.
        message: String,
    },
    /// A peer declared (or a caller tried to send) a frame larger than the
    /// configured limit.
    FrameTooLarge {
        /// Declared frame length in bytes.
        len: usize,
        /// The configured limit.
        max: usize,
    },
    /// The peer replied with a typed `FF8P` error frame.
    Remote {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
        /// Server's hint for when a retry might succeed (overload/drain
        /// replies); `None` when the server offered no hint.
        retry_after: Option<Duration>,
    },
    /// The connection was closed by the peer (EOF mid-frame or before one).
    Closed,
    /// A read or write hit the configured timeout.
    Timeout,
    /// Any other socket-level failure, rendered as text.
    Io {
        /// The underlying I/O failure.
        message: String,
    },
}

impl NetError {
    /// `true` when re-sending an **idempotent** request may succeed.
    ///
    /// Transport failures ([`NetError::Closed`], [`NetError::Timeout`],
    /// [`NetError::Io`]) are retryable — the server may have restarted or
    /// the network recovered. Remote errors defer to
    /// [`ErrorCode::is_retryable`]. Frame/codec violations and local
    /// size-limit breaches are deterministic and never retried.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Remote { code, .. } => code.is_retryable(),
            NetError::Closed | NetError::Timeout | NetError::Io { .. } => true,
            NetError::Codec(_) | NetError::Frame { .. } | NetError::FrameTooLarge { .. } => false,
        }
    }

    /// The retry-after hint carried by an overload/drain reply, if any.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            NetError::Remote { retry_after, .. } => *retry_after,
            _ => None,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "frame codec error: {e}"),
            NetError::Frame { message } => write!(f, "protocol violation: {message}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            NetError::Remote {
                code,
                message,
                retry_after,
            } => {
                write!(f, "server error ({code}): {message}")?;
                if let Some(hint) = retry_after {
                    write!(f, " (retry after {hint:?})")?;
                }
                Ok(())
            }
            NetError::Closed => write!(f, "connection closed"),
            NetError::Timeout => write!(f, "socket operation timed out"),
            NetError::Io { message } => write!(f, "socket error: {message}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout,
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe => NetError::Closed,
            _ => NetError::Io {
                message: e.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let variants: Vec<NetError> = vec![
            CodecError::Truncated { context: "frame" }.into(),
            NetError::Frame {
                message: "unknown kind".into(),
            },
            NetError::FrameTooLarge { len: 10, max: 5 },
            NetError::Remote {
                code: ErrorCode::BadRequest,
                message: "wrong width".into(),
                retry_after: None,
            },
            NetError::Remote {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
                retry_after: Some(Duration::from_millis(25)),
            },
            NetError::Closed,
            NetError::Timeout,
            NetError::Io {
                message: "refused".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_codes_roundtrip_the_wire() {
        for code in ErrorCode::all() {
            assert_eq!(ErrorCode::from_wire(code.to_wire()), Some(code));
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ErrorCode::from_wire(0), None);
        assert_eq!(ErrorCode::from_wire(99), None);
        // Wire bytes are unique (one row per byte).
        let mut bytes: Vec<u8> = ErrorCode::all().map(ErrorCode::to_wire).collect();
        bytes.sort_unstable();
        bytes.dedup();
        assert_eq!(bytes.len(), ErrorCode::all().count());
    }

    #[test]
    fn retry_classification_is_shared_and_stable() {
        // Transient server states retry; request defects and expired
        // budgets do not. The client retry policy and the chaos suite both
        // lean on exactly this split.
        for (code, retryable) in [
            (ErrorCode::BadRequest, false),
            (ErrorCode::ServerClosed, true),
            (ErrorCode::FrameTooLarge, false),
            (ErrorCode::Protocol, false),
            (ErrorCode::Internal, false),
            (ErrorCode::Overloaded, true),
            (ErrorCode::DeadlineExceeded, false),
            (ErrorCode::Draining, true),
            (ErrorCode::Unauthorized, false),
            (ErrorCode::UnknownModel, false),
        ] {
            assert_eq!(code.is_retryable(), retryable, "{code}");
            assert_eq!(
                NetError::Remote {
                    code,
                    message: String::new(),
                    retry_after: None,
                }
                .is_retryable(),
                retryable
            );
        }
        assert!(NetError::Closed.is_retryable());
        assert!(NetError::Timeout.is_retryable());
        assert!(NetError::Io {
            message: "x".into()
        }
        .is_retryable());
        assert!(!NetError::Frame {
            message: "x".into()
        }
        .is_retryable());
        assert!(!NetError::FrameTooLarge { len: 2, max: 1 }.is_retryable());
        assert!(!NetError::from(CodecError::Truncated { context: "c" }).is_retryable());
    }

    #[test]
    fn retry_after_hint_is_exposed() {
        let hinted = NetError::Remote {
            code: ErrorCode::Overloaded,
            message: "full".into(),
            retry_after: Some(Duration::from_millis(40)),
        };
        assert_eq!(hinted.retry_after(), Some(Duration::from_millis(40)));
        assert_eq!(NetError::Timeout.retry_after(), None);
    }

    #[test]
    fn io_errors_map_to_typed_variants() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            NetError::from(Error::new(ErrorKind::TimedOut, "t")),
            NetError::Timeout
        );
        assert_eq!(
            NetError::from(Error::new(ErrorKind::WouldBlock, "w")),
            NetError::Timeout
        );
        assert_eq!(
            NetError::from(Error::new(ErrorKind::UnexpectedEof, "e")),
            NetError::Closed
        );
        assert!(matches!(
            NetError::from(Error::new(ErrorKind::PermissionDenied, "p")),
            NetError::Io { .. }
        ));
    }

    #[test]
    fn source_points_to_codec_error() {
        use std::error::Error;
        let e: NetError = CodecError::Truncated { context: "x" }.into();
        assert!(e.source().is_some());
        assert!(NetError::Closed.source().is_none());
    }
}
