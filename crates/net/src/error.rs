//! The typed error surface of the network crate.
//!
//! Frame decoding never panics: every way bytes off the wire can be
//! malformed maps to a [`NetError`] variant, which the truncation and
//! byte-flip fuzz suites exercise exhaustively (mirroring the `FF8S`/`FF8C`
//! loaders). I/O failures are carried as rendered text so `NetError` stays
//! `Clone + PartialEq` like every other error type in the workspace.

use ff_codec::CodecError;
use std::fmt;

/// Machine-readable error category carried by an `FF8P` error reply, so a
/// client can react (retry, fix the request, give up) without parsing the
/// human-readable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request does not match the served model (wrong feature count,
    /// zero rows, ...).
    BadRequest,
    /// The inference engine behind the front-end has shut down.
    ServerClosed,
    /// The request frame declared a length above the server's frame limit.
    FrameTooLarge,
    /// The server could not decode the request frame.
    Protocol,
    /// Any other server-side failure.
    Internal,
}

impl ErrorCode {
    /// Wire encoding of this code.
    pub fn to_wire(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::ServerClosed => 2,
            ErrorCode::FrameTooLarge => 3,
            ErrorCode::Protocol => 4,
            ErrorCode::Internal => 5,
        }
    }

    /// Decodes a wire byte; unknown codes are `None` (the frame decoder
    /// turns that into a typed [`NetError::Frame`]).
    pub fn from_wire(code: u8) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::ServerClosed),
            3 => Some(ErrorCode::FrameTooLarge),
            4 => Some(ErrorCode::Protocol),
            5 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorCode::BadRequest => "bad request",
            ErrorCode::ServerClosed => "server closed",
            ErrorCode::FrameTooLarge => "frame too large",
            ErrorCode::Protocol => "protocol error",
            ErrorCode::Internal => "internal error",
        })
    }
}

/// Error type for `FF8P` framing, the network server and the client.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A frame failed to decode (bad magic/version, truncation, structural
    /// corruption) — wraps the shared codec error.
    Codec(CodecError),
    /// A frame decoded structurally but violates the protocol (unknown
    /// frame kind, zero rows, reply id mismatch, ...).
    Frame {
        /// What is wrong with the frame.
        message: String,
    },
    /// A peer declared (or a caller tried to send) a frame larger than the
    /// configured limit.
    FrameTooLarge {
        /// Declared frame length in bytes.
        len: usize,
        /// The configured limit.
        max: usize,
    },
    /// The peer replied with a typed `FF8P` error frame.
    Remote {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The connection was closed by the peer (EOF mid-frame or before one).
    Closed,
    /// A read or write hit the configured timeout.
    Timeout,
    /// Any other socket-level failure, rendered as text.
    Io {
        /// The underlying I/O failure.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "frame codec error: {e}"),
            NetError::Frame { message } => write!(f, "protocol violation: {message}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            NetError::Remote { code, message } => write!(f, "server error ({code}): {message}"),
            NetError::Closed => write!(f, "connection closed"),
            NetError::Timeout => write!(f, "socket operation timed out"),
            NetError::Io { message } => write!(f, "socket error: {message}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout,
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe => NetError::Closed,
            _ => NetError::Io {
                message: e.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let variants: Vec<NetError> = vec![
            CodecError::Truncated { context: "frame" }.into(),
            NetError::Frame {
                message: "unknown kind".into(),
            },
            NetError::FrameTooLarge { len: 10, max: 5 },
            NetError::Remote {
                code: ErrorCode::BadRequest,
                message: "wrong width".into(),
            },
            NetError::Closed,
            NetError::Timeout,
            NetError::Io {
                message: "refused".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_codes_roundtrip_the_wire() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::ServerClosed,
            ErrorCode::FrameTooLarge,
            ErrorCode::Protocol,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_wire(code.to_wire()), Some(code));
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ErrorCode::from_wire(0), None);
        assert_eq!(ErrorCode::from_wire(99), None);
    }

    #[test]
    fn io_errors_map_to_typed_variants() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            NetError::from(Error::new(ErrorKind::TimedOut, "t")),
            NetError::Timeout
        );
        assert_eq!(
            NetError::from(Error::new(ErrorKind::WouldBlock, "w")),
            NetError::Timeout
        );
        assert_eq!(
            NetError::from(Error::new(ErrorKind::UnexpectedEof, "e")),
            NetError::Closed
        );
        assert!(matches!(
            NetError::from(Error::new(ErrorKind::PermissionDenied, "p")),
            NetError::Io { .. }
        ));
    }

    #[test]
    fn source_points_to_codec_error() {
        use std::error::Error;
        let e: NetError = CodecError::Truncated { context: "x" }.into();
        assert!(e.source().is_some());
        assert!(NetError::Closed.source().is_none());
    }
}
