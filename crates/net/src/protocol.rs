//! The versioned `FF8P` wire protocol.
//!
//! `FF8P` is the third member of the workspace's `FF8*` artifact family
//! (after the `FF8S` frozen-model and `FF8C` checkpoint formats) and reuses
//! the same [`ff_codec`] conventions: 4-byte magic, little-endian `u16`
//! version, reserved flags word, length-prefixed records, panic-free
//! checked reads.
//!
//! # Framing
//!
//! On a TCP stream, every message is one **frame**:
//!
//! ```text
//! frame_len        u32       — bytes that follow (bounded by the peer's
//!                              max-frame-size limit)
//! frame            frame_len × u8 — a complete FF8P artifact:
//!   magic          4 × u8    = "FF8P"
//!   version        u16       = 1, 2 or 3
//!   flags          u16       = model id (version 3; 0 and ignored below)
//!   v3: record "auth":
//!     token        string (u32 length + UTF-8, ≤ 128 bytes; empty = none)
//!   record "body":
//!     kind         u8        — see below
//!     kind-specific payload
//! ```
//!
//! # Frame kinds (version 3; `v2:`/`v3:` mark fields absent below that
//! version)
//!
//! Requests (client → server):
//!
//! ```text
//! 1 Predict       id u64, v2: deadline_micros u32,
//!                 count u32, features count × f32
//! 2 PredictBatch  id u64, v2: deadline_micros u32,
//!                 rows u32, cols u32, data rows·cols × f32
//! 3 Stats         id u64
//! 4 Health        id u64
//! 5 Shutdown      id u64
//! 6 TraceDump     id u64, max u32 (0 = everything in the ring)
//! 7 MetricsDump   id u64
//! ```
//!
//! Replies (server → client) echo the request's `id`:
//!
//! ```text
//! 129 Labels       id u64, count u32, labels count × u32
//! 130 StatsReply   id u64, requests u64, batches u64, max_batch u64,
//!                  mean_batch f64, latency: count u64 +
//!                  mean/p50/p95/p99/max as u64 nanoseconds,
//!                  v2: shed_expired u64, rejected_overload u64,
//!                  rejected_deadline u64,
//!                  v3: model count u32, then per model: id u32,
//!                  name string (≤ 64 bytes), version u64, swaps u64,
//!                  requests u64, shed_expired u64, rejected_overload u64,
//!                  rejected_deadline u64, latency count u64 +
//!                  mean/p50/p95/p99/max as u64 nanoseconds,
//!                  v3: 4 stage blocks (queue, assembly, gemm, write),
//!                  each count u64 + mean/p50/p95/p99/max as u64
//!                  nanoseconds
//! 131 HealthReply  id u64, input_features u32, num_classes u32, mode u8,
//!                  v2: state u8 (0 = ok, 1 = draining),
//!                  v3: model_version u64
//! 132 ShutdownAck  id u64
//! 133 Error        id u64, code u8, v2: retry_after_millis u32,
//!                  message string (u32 length + UTF-8)
//! 134 TraceDumpReply   id u64, dropped u64, count u32, then per trace:
//!                      seq u64, model_id u32, flags u8 (bit0 sampled,
//!                      bit1 slow, bit2 completed), deadline_micros i64
//!                      (i64::MIN = none), end_to_end_ns u64, 6 stage
//!                      stamps as u64 ns since recv (u64::MAX = missing)
//! 135 MetricsDumpReply id u64, text string (u32 length + UTF-8,
//!                      ≤ 64 KiB — the stable metrics exposition format)
//! ```
//!
//! # Version negotiation
//!
//! Each frame carries its writer's version; a peer accepts any version in
//! `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION`. Version-1 frames decode with
//! neutral defaults (no deadline, no retry hint, `Ok` health state, zero
//! shed counters), and the server answers every connection **at the version
//! its requests declare**, so old clients keep decoding replies they
//! understand. `deadline_micros` is the request's *remaining* latency
//! budget at send time (0 = unbounded) — a relative budget survives clock
//! skew between peers, unlike an absolute timestamp.
//!
//! # Multi-model addressing and auth (version 3)
//!
//! Version 3 puts the previously-reserved header **flags word to work as
//! the model id** and adds a header-level **auth record** carrying an
//! optional bearer token, both available on *every* frame kind through
//! [`FrameMeta`]. Pre-v3 frames decode with [`FrameMeta::default`] (model
//! id 0 — the registry's default model — and no token), which is exactly
//! how v1/v2 clients keep working unchanged against a v3 server. Replies
//! echo the request's model id; servers never echo the token back. The
//! body layouts are unchanged, so the v1/v2 byte streams are identical to
//! what previous builds emitted.
//!
//! Decoding is hardened exactly like the sibling loaders: every declared
//! count is bounded by the remaining payload before allocation
//! ([`ff_codec::Reader::ensure_fits`]), unknown kinds/codes and trailing
//! bytes are typed [`NetError`]s, and the fuzz suite truncates at every
//! offset and flips random bytes without ever observing a panic.

use crate::{ErrorCode, NetError, Result};
use ff_codec::{Reader, Writer};
use ff_metrics::LatencySummary;
use ff_serve::{RequestTrace, StageSummaries};
use std::io::Read;
use std::time::Duration;

/// The four magic bytes every `FF8P` frame starts with.
pub const MAGIC: [u8; 4] = *b"FF8P";

/// The newest protocol version this build speaks (and writes by default).
pub const PROTOCOL_VERSION: u16 = 3;

/// The oldest protocol version this build still accepts.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Default upper bound on one frame's length (16 MiB — a 5000-row batch of
/// 784 features is ~15 MiB; anything larger should be split).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

const KIND_PREDICT: u8 = 1;
const KIND_PREDICT_BATCH: u8 = 2;
const KIND_STATS: u8 = 3;
const KIND_HEALTH: u8 = 4;
const KIND_SHUTDOWN: u8 = 5;
const KIND_TRACE_DUMP: u8 = 6;
const KIND_METRICS_DUMP: u8 = 7;
const KIND_LABELS: u8 = 129;
const KIND_STATS_REPLY: u8 = 130;
const KIND_HEALTH_REPLY: u8 = 131;
const KIND_SHUTDOWN_ACK: u8 = 132;
const KIND_ERROR: u8 = 133;
const KIND_TRACE_DUMP_REPLY: u8 = 134;
const KIND_METRICS_DUMP_REPLY: u8 = 135;

/// How many distinct frame kinds [`Frame::kind_index`] enumerates.
pub const FRAME_KIND_COUNT: usize = 14;

/// Bound on the length of an error reply's message string.
const MAX_ERROR_MESSAGE_LEN: usize = 4096;

/// Bound on the length of a metrics-dump reply's exposition text (64 KiB
/// covers thousands of metric lines; encoders truncate on a line feed if a
/// registry somehow exceeds it).
const MAX_METRICS_TEXT_LEN: usize = 64 * 1024;

/// Fixed wire size of one trace entry in a [`Frame::TraceDumpReply`]:
/// seq(8) + model_id(4) + flags(1) + deadline(8) + end_to_end(8) + 6
/// stamps(48).
const TRACE_ENTRY_BYTES: usize = 77;

/// Sentinel meaning "stage never reached" in a trace entry's stamp slots.
const TRACE_STAMP_MISSING: u64 = u64::MAX;

/// Sentinel meaning "no deadline" in a trace entry's deadline slot.
const TRACE_NO_DEADLINE: i64 = i64::MIN;

/// Bound on the byte length of a version-3 auth token (generous for any
/// reasonable shared secret, small enough that the fixed header cost stays
/// negligible against feature payloads).
pub const MAX_AUTH_TOKEN_LEN: usize = 128;

/// Bound on the byte length of a model name in a version-3 stats reply.
const MAX_MODEL_NAME_LEN: usize = 64;

/// Per-frame header metadata introduced by protocol version 3: which
/// registry model the frame addresses (carried in the header flags word)
/// and an optional bearer auth token (carried in the header-level auth
/// record).
///
/// [`FrameMeta::default`] — model id 0, no token — is both what v3 writers
/// emit when the caller does not care and what decoders report for v1/v2
/// frames, so pre-v3 peers transparently address the server's default
/// model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrameMeta {
    /// The registry model id this frame addresses (requests) or answers
    /// for (replies). 0 is the registry's default model.
    pub model_id: u16,
    /// Bearer auth token, at most [`MAX_AUTH_TOKEN_LEN`] bytes. Replies
    /// never carry one — a server must not echo secrets.
    pub token: Option<String>,
}

impl FrameMeta {
    /// Meta addressing `model_id` with no token.
    pub fn for_model(model_id: u16) -> Self {
        FrameMeta {
            model_id,
            token: None,
        }
    }
}

/// Which classification mode the remote server runs, as reported by
/// [`Frame::HealthReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Forward chain + argmax of the final logits.
    Logits,
    /// FF-native per-label goodness sweep.
    Goodness,
}

impl WireMode {
    fn to_wire(self) -> u8 {
        match self {
            WireMode::Logits => 0,
            WireMode::Goodness => 1,
        }
    }

    fn from_wire(byte: u8) -> Result<Self> {
        match byte {
            0 => Ok(WireMode::Logits),
            1 => Ok(WireMode::Goodness),
            other => Err(NetError::Frame {
                message: format!("unknown serve mode {other}"),
            }),
        }
    }
}

/// The remote server's lifecycle phase, as reported by
/// [`Frame::HealthReply`] (protocol version 2; version-1 peers always
/// report [`WireHealthState::Ok`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireHealthState {
    /// Accepting and serving requests normally.
    Ok,
    /// Graceful shutdown in progress: in-flight requests finish, new
    /// predictions are refused with [`ErrorCode::Draining`].
    Draining,
}

impl WireHealthState {
    fn to_wire(self) -> u8 {
        match self {
            WireHealthState::Ok => 0,
            WireHealthState::Draining => 1,
        }
    }

    fn from_wire(byte: u8) -> Result<Self> {
        match byte {
            0 => Ok(WireHealthState::Ok),
            1 => Ok(WireHealthState::Draining),
            other => Err(NetError::Frame {
                message: format!("unknown health state {other}"),
            }),
        }
    }
}

/// One registry model's serving statistics as carried by a version-3
/// [`Frame::StatsReply`] — the wire form of [`ff_serve::ModelStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireModelStats {
    /// The registry id requests address this model by.
    pub id: u16,
    /// Human-readable entry name (at most 64 bytes on the wire; longer
    /// names are truncated on a UTF-8 boundary when encoding).
    pub name: String,
    /// Current model version (1 at registration, +1 per hot-swap).
    pub version: u64,
    /// Successful hot-swaps performed on this entry.
    pub swaps: u64,
    /// Requests this model answered successfully.
    pub requests: u64,
    /// Requests shed in the batch queue on an expired deadline.
    pub shed_expired: u64,
    /// Requests refused admission under overload.
    pub rejected_overload: u64,
    /// Requests refused on arrival with an already-expired deadline.
    pub rejected_deadline: u64,
    /// Queue-to-reply latency distribution (served requests only).
    pub latency: LatencySummary,
}

impl From<ff_serve::ModelStats> for WireModelStats {
    fn from(stats: ff_serve::ModelStats) -> Self {
        WireModelStats {
            id: stats.id,
            name: stats.name,
            version: stats.version,
            swaps: stats.swaps,
            requests: stats.requests,
            shed_expired: stats.shed_expired,
            rejected_overload: stats.rejected_overload,
            rejected_deadline: stats.rejected_deadline,
            latency: stats.latency,
        }
    }
}

/// Aggregate serving statistics as carried by [`Frame::StatsReply`] — the
/// wire form of [`ff_serve::ServerStats`], with the latency summary
/// flattened to nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStats {
    /// Requests answered successfully.
    pub requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Queue-to-reply latency distribution.
    pub latency: LatencySummary,
    /// Requests whose deadline expired in the batch queue and were shed
    /// before the GEMM (version 2; zero from version-1 peers).
    pub shed_expired: u64,
    /// Requests refused at admission because the queue was full (version 2;
    /// zero from version-1 peers).
    pub rejected_overload: u64,
    /// Requests refused at admission because their deadline had already
    /// expired (version 2; zero from version-1 peers).
    pub rejected_deadline: u64,
    /// Per-model statistics, ascending by id (version 3; empty from older
    /// peers).
    pub models: Vec<WireModelStats>,
    /// Always-on per-stage latency summaries — queue wait, batch assembly,
    /// GEMM, reply write (version 3; zeroed from older peers).
    pub stages: StageSummaries,
}

impl From<ff_serve::ServerStats> for WireStats {
    fn from(stats: ff_serve::ServerStats) -> Self {
        WireStats {
            requests: stats.requests,
            batches: stats.batches,
            max_batch: stats.max_batch as u64,
            mean_batch: stats.mean_batch,
            latency: stats.latency,
            shed_expired: stats.shed_expired,
            rejected_overload: stats.rejected_overload,
            rejected_deadline: stats.rejected_deadline,
            models: stats.models.into_iter().map(WireModelStats::from).collect(),
            stages: stats.stages,
        }
    }
}

/// One `FF8P` message (request or reply). See the [module docs](self) for
/// the byte layout of every kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Classify one sample.
    Predict {
        /// Caller-chosen id echoed by the reply.
        id: u64,
        /// Remaining latency budget in microseconds at send time; 0 means
        /// unbounded. Version-1 peers neither send nor see this field.
        deadline_micros: u32,
        /// The sample's features.
        features: Vec<f32>,
    },
    /// Classify a whole row-major batch in one frame.
    PredictBatch {
        /// Caller-chosen id echoed by the reply.
        id: u64,
        /// Remaining latency budget in microseconds at send time; 0 means
        /// unbounded. Version-1 peers neither send nor see this field.
        deadline_micros: u32,
        /// Features per row (must be positive).
        cols: u32,
        /// Row-major `rows × cols` feature data.
        data: Vec<f32>,
    },
    /// Read the server's aggregate statistics.
    Stats {
        /// Caller-chosen id echoed by the reply.
        id: u64,
    },
    /// Probe the server's identity and liveness.
    Health {
        /// Caller-chosen id echoed by the reply.
        id: u64,
    },
    /// Ask the server to stop accepting connections.
    Shutdown {
        /// Caller-chosen id echoed by the reply.
        id: u64,
    },
    /// Read the server's recent per-request traces from the flight
    /// recorder. Open like [`Frame::Stats`] — traces carry timings, never
    /// payloads or secrets.
    TraceDump {
        /// Caller-chosen id echoed by the reply.
        id: u64,
        /// Most recent traces to return; 0 means everything in the ring.
        max: u32,
    },
    /// Read the server's full metrics registry in the stable text
    /// exposition format. Open like [`Frame::Stats`].
    MetricsDump {
        /// Caller-chosen id echoed by the reply.
        id: u64,
    },
    /// Reply to [`Frame::Predict`] / [`Frame::PredictBatch`]: one label per
    /// input row, in input order.
    Labels {
        /// The request's id.
        id: u64,
        /// Predicted class labels.
        labels: Vec<u32>,
    },
    /// Reply to [`Frame::Stats`].
    StatsReply {
        /// The request's id.
        id: u64,
        /// The statistics snapshot (boxed: the stage and per-model blocks
        /// make this by far the widest variant, and replies are moved
        /// through channels).
        stats: Box<WireStats>,
    },
    /// Reply to [`Frame::Health`].
    HealthReply {
        /// The request's id.
        id: u64,
        /// Features a request row must provide.
        input_features: u32,
        /// Number of classes the model scores.
        num_classes: u32,
        /// Classification mode the server runs.
        mode: WireMode,
        /// Lifecycle phase (version 2; version-1 peers report
        /// [`WireHealthState::Ok`]).
        state: WireHealthState,
        /// Version of the addressed model (version 3; zero from older
        /// peers, bumped by every hot-swap).
        model_version: u64,
    },
    /// Reply to [`Frame::Shutdown`].
    ShutdownAck {
        /// The request's id.
        id: u64,
    },
    /// Typed error reply to any request.
    Error {
        /// The request's id (0 when the request id could not be decoded).
        id: u64,
        /// Machine-readable category.
        code: ErrorCode,
        /// Server's hint for when a retry might succeed, in milliseconds;
        /// 0 means no hint. Version-1 peers neither send nor see this
        /// field.
        retry_after_millis: u32,
        /// Human-readable detail.
        message: String,
    },
    /// Reply to [`Frame::TraceDump`].
    TraceDumpReply {
        /// The request's id.
        id: u64,
        /// Trace commits the recorder lost to ring contention.
        dropped: u64,
        /// Recent committed traces, oldest first.
        traces: Vec<RequestTrace>,
    },
    /// Reply to [`Frame::MetricsDump`].
    MetricsDumpReply {
        /// The request's id.
        id: u64,
        /// The registry snapshot in the stable exposition format (one
        /// metric per line, sorted by name).
        text: String,
    },
}

impl Frame {
    /// The frame's correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Frame::Predict { id, .. }
            | Frame::PredictBatch { id, .. }
            | Frame::Stats { id }
            | Frame::Health { id }
            | Frame::Shutdown { id }
            | Frame::TraceDump { id, .. }
            | Frame::MetricsDump { id }
            | Frame::Labels { id, .. }
            | Frame::StatsReply { id, .. }
            | Frame::HealthReply { id, .. }
            | Frame::ShutdownAck { id }
            | Frame::Error { id, .. }
            | Frame::TraceDumpReply { id, .. }
            | Frame::MetricsDumpReply { id, .. } => *id,
        }
    }

    /// `true` for the request kinds a server handles.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Frame::Predict { .. }
                | Frame::PredictBatch { .. }
                | Frame::Stats { .. }
                | Frame::Health { .. }
                | Frame::Shutdown { .. }
                | Frame::TraceDump { .. }
                | Frame::MetricsDump { .. }
        )
    }

    /// A dense 0-based index for this frame's kind — the row into
    /// [`Frame::kind_names`] and any per-kind counter array (see
    /// [`FRAME_KIND_COUNT`]). Stable across releases: new kinds append.
    pub fn kind_index(&self) -> usize {
        match self {
            Frame::Predict { .. } => 0,
            Frame::PredictBatch { .. } => 1,
            Frame::Stats { .. } => 2,
            Frame::Health { .. } => 3,
            Frame::Shutdown { .. } => 4,
            Frame::TraceDump { .. } => 5,
            Frame::MetricsDump { .. } => 6,
            Frame::Labels { .. } => 7,
            Frame::StatsReply { .. } => 8,
            Frame::HealthReply { .. } => 9,
            Frame::ShutdownAck { .. } => 10,
            Frame::Error { .. } => 11,
            Frame::TraceDumpReply { .. } => 12,
            Frame::MetricsDumpReply { .. } => 13,
        }
    }

    /// This kind's stable snake_case name, as used in `net.wire.<kind>.*`
    /// metric names.
    pub fn kind_name(&self) -> &'static str {
        Self::kind_names()[self.kind_index()]
    }

    /// Every kind's name, indexed by [`Frame::kind_index`].
    pub fn kind_names() -> [&'static str; FRAME_KIND_COUNT] {
        [
            "predict",
            "predict_batch",
            "stats",
            "health",
            "shutdown",
            "trace_dump",
            "metrics_dump",
            "labels",
            "stats_reply",
            "health_reply",
            "shutdown_ack",
            "error",
            "trace_dump_reply",
            "metrics_dump_reply",
        ]
    }
}

/// Truncates a string to `bound` bytes on a UTF-8 boundary, so a frame
/// this module *encodes* is always decodable by a peer running the same
/// protocol version.
fn bounded_str(s: &str, bound: usize) -> &str {
    if s.len() <= bound {
        return s;
    }
    let mut end = bound;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// [`bounded_str`] at the error-message bound [`decode_frame`] enforces.
fn bounded_error_message(message: &str) -> &str {
    bounded_str(message, MAX_ERROR_MESSAGE_LEN)
}

/// Truncates oversized metrics exposition text at the last complete line
/// within the decode bound, so a peer never receives a torn metric line.
fn bounded_metrics_text(text: &str) -> &str {
    if text.len() <= MAX_METRICS_TEXT_LEN {
        return text;
    }
    let head = bounded_str(text, MAX_METRICS_TEXT_LEN);
    match head.rfind('\n') {
        Some(end) => &head[..=end],
        None => head,
    }
}

/// Encodes a latency summary as count + five u64 nanosecond fields — the
/// layout every stats/stage block shares.
fn put_latency_summary(r: &mut ff_codec::RecordWriter, summary: &LatencySummary) {
    r.put_u64(summary.count);
    for duration in [
        summary.mean,
        summary.p50,
        summary.p95,
        summary.p99,
        summary.max,
    ] {
        r.put_u64(duration.as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// Decodes the layout written by [`put_latency_summary`].
fn get_latency_summary(
    body: &mut ff_codec::Reader<'_>,
    context: &'static str,
) -> Result<LatencySummary> {
    let count = body.get_u64(context)?;
    let mut nanos = [0u64; 5];
    for slot in &mut nanos {
        *slot = body.get_u64(context)?;
    }
    Ok(LatencySummary {
        count,
        mean: Duration::from_nanos(nanos[0]),
        p50: Duration::from_nanos(nanos[1]),
        p95: Duration::from_nanos(nanos[2]),
        p99: Duration::from_nanos(nanos[3]),
        max: Duration::from_nanos(nanos[4]),
    })
}

/// Serializes a frame into its `FF8P` bytes at the newest protocol version
/// with default [`FrameMeta`] (without the outer `u32` length prefix —
/// [`write_frame`] adds that).
///
/// See [`encode_frame_at`] for the version-negotiated form and the panic
/// contract.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    encode_frame_at(frame, PROTOCOL_VERSION)
}

/// [`encode_frame_meta`] with default [`FrameMeta`]: the frame addresses
/// the default model and carries no auth token.
///
/// # Panics
///
/// As for [`encode_frame_meta`].
pub fn encode_frame_at(frame: &Frame, version: u16) -> Vec<u8> {
    encode_frame_meta(frame, version, &FrameMeta::default())
}

/// Serializes a frame into its `FF8P` bytes at the given protocol
/// `version`, so a server can answer an old client in the dialect its
/// requests declared. Version-2 fields (deadlines, retry hints, health
/// state, shed counters) are dropped when encoding at version 1; the
/// version-3 header metadata (model id, auth token) and payload fields
/// (per-model stats, model version) are dropped when encoding below
/// version 3 — exactly what a pre-v3 peer cannot express.
///
/// Error messages longer than the decoder's 4096-byte bound and model
/// names longer than 64 bytes are truncated (on a UTF-8 boundary) so every
/// emitted frame is decodable by the peer.
///
/// # Panics
///
/// Panics when `version` is outside
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`], when `meta.token`
/// exceeds [`MAX_AUTH_TOKEN_LEN`] bytes (truncating a secret would send a
/// *different* secret — a loud local failure is the only safe option), or
/// when a [`Frame::PredictBatch`]'s `data` does not divide into positive
/// `cols`-sized rows — a loud local failure instead of a frame whose
/// declared geometry silently drops the ragged tail and fails with an
/// opaque trailing-bytes error on the *peer*. [`crate::Client`] validates
/// its inputs before constructing the frame.
pub fn encode_frame_meta(frame: &Frame, version: u16, meta: &FrameMeta) -> Vec<u8> {
    assert!(
        (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version),
        "cannot encode FF8P version {version} (supported: \
         {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
    );
    let v2 = version >= 2;
    let v3 = version >= 3;
    let token = meta.token.as_deref().unwrap_or("");
    assert!(
        token.len() <= MAX_AUTH_TOKEN_LEN,
        "auth token of {} bytes exceeds the {MAX_AUTH_TOKEN_LEN}-byte limit",
        token.len()
    );
    let payload_estimate = match frame {
        Frame::Predict { features, .. } => 20 + 4 * features.len(),
        Frame::PredictBatch { data, .. } => 24 + 4 * data.len(),
        Frame::Labels { labels, .. } => 16 + 4 * labels.len(),
        Frame::Error { message, .. } => 24 + message.len(),
        Frame::StatsReply { stats, .. } => 392 + 160 * stats.models.len(),
        Frame::TraceDumpReply { traces, .. } => 32 + TRACE_ENTRY_BYTES * traces.len(),
        Frame::MetricsDumpReply { text, .. } => 24 + text.len(),
        _ => 104,
    };
    let flags = if v3 { meta.model_id } else { 0 };
    let mut writer =
        Writer::with_flags(&MAGIC, version, flags, 24 + token.len() + payload_estimate);
    if v3 {
        writer.record(|r| r.put_string(token));
    }
    writer.record_sized(payload_estimate, |r| match frame {
        Frame::Predict {
            id,
            deadline_micros,
            features,
        } => {
            r.put_u8(KIND_PREDICT);
            r.put_u64(*id);
            if v2 {
                r.put_u32(*deadline_micros);
            }
            r.put_u32(features.len() as u32);
            for &x in features {
                r.put_f32(x);
            }
        }
        Frame::PredictBatch {
            id,
            deadline_micros,
            cols,
            data,
        } => {
            assert!(
                *cols > 0 && data.len() % *cols as usize == 0,
                "PredictBatch data ({} values) must divide into positive rows of {cols}",
                data.len()
            );
            r.put_u8(KIND_PREDICT_BATCH);
            r.put_u64(*id);
            if v2 {
                r.put_u32(*deadline_micros);
            }
            r.put_u32((data.len() / *cols as usize) as u32);
            r.put_u32(*cols);
            for &x in data {
                r.put_f32(x);
            }
        }
        Frame::Stats { id } => {
            r.put_u8(KIND_STATS);
            r.put_u64(*id);
        }
        Frame::Health { id } => {
            r.put_u8(KIND_HEALTH);
            r.put_u64(*id);
        }
        Frame::Shutdown { id } => {
            r.put_u8(KIND_SHUTDOWN);
            r.put_u64(*id);
        }
        Frame::Labels { id, labels } => {
            r.put_u8(KIND_LABELS);
            r.put_u64(*id);
            r.put_u32(labels.len() as u32);
            for &label in labels {
                r.put_u32(label);
            }
        }
        Frame::TraceDump { id, max } => {
            r.put_u8(KIND_TRACE_DUMP);
            r.put_u64(*id);
            r.put_u32(*max);
        }
        Frame::MetricsDump { id } => {
            r.put_u8(KIND_METRICS_DUMP);
            r.put_u64(*id);
        }
        Frame::StatsReply { id, stats } => {
            r.put_u8(KIND_STATS_REPLY);
            r.put_u64(*id);
            r.put_u64(stats.requests);
            r.put_u64(stats.batches);
            r.put_u64(stats.max_batch);
            r.put_f64(stats.mean_batch);
            put_latency_summary(r, &stats.latency);
            if v2 {
                r.put_u64(stats.shed_expired);
                r.put_u64(stats.rejected_overload);
                r.put_u64(stats.rejected_deadline);
            }
            if v3 {
                r.put_u32(stats.models.len() as u32);
                for model in &stats.models {
                    r.put_u32(u32::from(model.id));
                    r.put_string(bounded_str(&model.name, MAX_MODEL_NAME_LEN));
                    r.put_u64(model.version);
                    r.put_u64(model.swaps);
                    r.put_u64(model.requests);
                    r.put_u64(model.shed_expired);
                    r.put_u64(model.rejected_overload);
                    r.put_u64(model.rejected_deadline);
                    put_latency_summary(r, &model.latency);
                }
                for (_, stage) in stats.stages.named() {
                    put_latency_summary(r, &stage);
                }
            }
        }
        Frame::HealthReply {
            id,
            input_features,
            num_classes,
            mode,
            state,
            model_version,
        } => {
            r.put_u8(KIND_HEALTH_REPLY);
            r.put_u64(*id);
            r.put_u32(*input_features);
            r.put_u32(*num_classes);
            r.put_u8(mode.to_wire());
            if v2 {
                r.put_u8(state.to_wire());
            }
            if v3 {
                r.put_u64(*model_version);
            }
        }
        Frame::ShutdownAck { id } => {
            r.put_u8(KIND_SHUTDOWN_ACK);
            r.put_u64(*id);
        }
        Frame::Error {
            id,
            code,
            retry_after_millis,
            message,
        } => {
            r.put_u8(KIND_ERROR);
            r.put_u64(*id);
            r.put_u8(code.to_wire());
            if v2 {
                r.put_u32(*retry_after_millis);
            }
            r.put_string(bounded_error_message(message));
        }
        Frame::TraceDumpReply {
            id,
            dropped,
            traces,
        } => {
            r.put_u8(KIND_TRACE_DUMP_REPLY);
            r.put_u64(*id);
            r.put_u64(*dropped);
            r.put_u32(traces.len() as u32);
            for trace in traces {
                r.put_u64(trace.seq);
                r.put_u32(u32::from(trace.model_id));
                let mut trace_flags = 0u8;
                if trace.sampled {
                    trace_flags |= 0b001;
                }
                if trace.slow {
                    trace_flags |= 0b010;
                }
                if trace.completed {
                    trace_flags |= 0b100;
                }
                r.put_u8(trace_flags);
                let deadline = trace.deadline_remaining_micros.unwrap_or(TRACE_NO_DEADLINE);
                r.put_u64(deadline as u64);
                r.put_u64(trace.end_to_end_ns);
                for stamp in &trace.stamps {
                    r.put_u64(stamp.unwrap_or(TRACE_STAMP_MISSING));
                }
            }
        }
        Frame::MetricsDumpReply { id, text } => {
            r.put_u8(KIND_METRICS_DUMP_REPLY);
            r.put_u64(*id);
            r.put_string(bounded_metrics_text(text));
        }
    });
    writer.into_vec()
}

/// Deserializes the bytes produced by [`encode_frame`] /
/// [`encode_frame_at`], discarding the peer's declared version. Servers use
/// [`decode_frame_versioned`] to learn which dialect to answer in.
///
/// # Errors
///
/// Never panics: malformed input maps to [`NetError::Codec`] (header or
/// truncation problems) or [`NetError::Frame`] (structural violations).
pub fn decode_frame(bytes: &[u8]) -> Result<Frame> {
    decode_frame_versioned(bytes).map(|(frame, _)| frame)
}

/// [`decode_frame_meta`] without the header metadata, for callers that do
/// not route by model or check tokens.
///
/// # Errors
///
/// As for [`decode_frame`].
pub fn decode_frame_versioned(bytes: &[u8]) -> Result<(Frame, u16)> {
    decode_frame_meta(bytes).map(|(frame, version, _)| (frame, version))
}

/// Deserializes a frame and reports the protocol version it was written at
/// plus its header metadata ([`FrameMeta`]), accepting any version in
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`]. Version-1 frames
/// decode with neutral defaults for the version-2 fields; pre-v3 frames
/// report [`FrameMeta::default`] (default model, no token).
///
/// # Errors
///
/// As for [`decode_frame`].
pub fn decode_frame_meta(bytes: &[u8]) -> Result<(Frame, u16, FrameMeta)> {
    let (mut reader, version, flags) =
        Reader::with_versions_flags(bytes, &MAGIC, MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION)?;
    let v2 = version >= 2;
    let v3 = version >= 3;
    let meta = if v3 {
        let mut auth = reader.record("auth record")?;
        let token = auth.get_string(MAX_AUTH_TOKEN_LEN, "auth token")?;
        auth.finish("auth record")?;
        FrameMeta {
            model_id: flags,
            token: if token.is_empty() { None } else { Some(token) },
        }
    } else {
        // The pre-v3 flags word is reserved-and-ignored, exactly as before.
        FrameMeta::default()
    };
    let mut body = reader.record("frame body")?;
    let kind = body.get_u8("frame kind")?;
    let id = body.get_u64("frame id")?;
    let frame = match kind {
        KIND_PREDICT => {
            let deadline_micros = if v2 {
                body.get_u32("predict deadline")?
            } else {
                0
            };
            let count = body.get_u32("feature count")? as usize;
            if count == 0 {
                return Err(NetError::Frame {
                    message: "predict frame with zero features".to_string(),
                });
            }
            body.ensure_fits(count, 4, "features")?;
            let mut features = Vec::with_capacity(count);
            for _ in 0..count {
                features.push(body.get_f32("features")?);
            }
            Frame::Predict {
                id,
                deadline_micros,
                features,
            }
        }
        KIND_PREDICT_BATCH => {
            let deadline_micros = if v2 {
                body.get_u32("batch deadline")?
            } else {
                0
            };
            let rows = body.get_u32("batch rows")? as usize;
            let cols = body.get_u32("batch cols")?;
            if rows == 0 || cols == 0 {
                return Err(NetError::Frame {
                    message: format!("predict-batch frame with empty geometry [{rows}, {cols}]"),
                });
            }
            let len = rows.checked_mul(cols as usize).ok_or(NetError::Frame {
                message: format!("batch geometry [{rows}, {cols}] overflows"),
            })?;
            body.ensure_fits(len, 4, "batch data")?;
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(body.get_f32("batch data")?);
            }
            Frame::PredictBatch {
                id,
                deadline_micros,
                cols,
                data,
            }
        }
        KIND_STATS => Frame::Stats { id },
        KIND_HEALTH => Frame::Health { id },
        KIND_SHUTDOWN => Frame::Shutdown { id },
        KIND_LABELS => {
            let count = body.get_u32("label count")? as usize;
            body.ensure_fits(count, 4, "labels")?;
            let mut labels = Vec::with_capacity(count);
            for _ in 0..count {
                labels.push(body.get_u32("labels")?);
            }
            Frame::Labels { id, labels }
        }
        KIND_STATS_REPLY => {
            let requests = body.get_u64("stats requests")?;
            let batches = body.get_u64("stats batches")?;
            let max_batch = body.get_u64("stats max batch")?;
            let mean_batch = body.get_f64("stats mean batch")?;
            let latency = get_latency_summary(&mut body, "latency quantile")?;
            let (shed_expired, rejected_overload, rejected_deadline) = if v2 {
                (
                    body.get_u64("stats shed expired")?,
                    body.get_u64("stats rejected overload")?,
                    body.get_u64("stats rejected deadline")?,
                )
            } else {
                (0, 0, 0)
            };
            let models = if v3 {
                let model_count = body.get_u32("model stats count")? as usize;
                // Smallest possible per-model entry: id(4) + empty name(4)
                // + 12 × u64.
                body.ensure_fits(model_count, 104, "model stats")?;
                let mut models = Vec::with_capacity(model_count);
                for _ in 0..model_count {
                    let wire_id = body.get_u32("model stats id")?;
                    let model_id = u16::try_from(wire_id).map_err(|_| NetError::Frame {
                        message: format!("model stats id {wire_id} exceeds u16"),
                    })?;
                    let name = body.get_string(MAX_MODEL_NAME_LEN, "model stats name")?;
                    let model_version = body.get_u64("model stats version")?;
                    let swaps = body.get_u64("model stats swaps")?;
                    let model_requests = body.get_u64("model stats requests")?;
                    let model_shed = body.get_u64("model stats shed expired")?;
                    let model_overload = body.get_u64("model stats rejected overload")?;
                    let model_deadline = body.get_u64("model stats rejected deadline")?;
                    let latency = get_latency_summary(&mut body, "model latency quantile")?;
                    models.push(WireModelStats {
                        id: model_id,
                        name,
                        version: model_version,
                        swaps,
                        requests: model_requests,
                        shed_expired: model_shed,
                        rejected_overload: model_overload,
                        rejected_deadline: model_deadline,
                        latency,
                    });
                }
                models
            } else {
                Vec::new()
            };
            let stages = if v3 {
                StageSummaries {
                    queue: get_latency_summary(&mut body, "stage queue")?,
                    assembly: get_latency_summary(&mut body, "stage assembly")?,
                    gemm: get_latency_summary(&mut body, "stage gemm")?,
                    write: get_latency_summary(&mut body, "stage write")?,
                }
            } else {
                StageSummaries::default()
            };
            Frame::StatsReply {
                id,
                stats: Box::new(WireStats {
                    requests,
                    batches,
                    max_batch,
                    mean_batch,
                    latency,
                    shed_expired,
                    rejected_overload,
                    rejected_deadline,
                    models,
                    stages,
                }),
            }
        }
        KIND_HEALTH_REPLY => Frame::HealthReply {
            id,
            input_features: body.get_u32("health input features")?,
            num_classes: body.get_u32("health num classes")?,
            mode: WireMode::from_wire(body.get_u8("health mode")?)?,
            state: if v2 {
                WireHealthState::from_wire(body.get_u8("health state")?)?
            } else {
                WireHealthState::Ok
            },
            model_version: if v3 {
                body.get_u64("health model version")?
            } else {
                0
            },
        },
        KIND_TRACE_DUMP => Frame::TraceDump {
            id,
            max: body.get_u32("trace dump max")?,
        },
        KIND_METRICS_DUMP => Frame::MetricsDump { id },
        KIND_TRACE_DUMP_REPLY => {
            let dropped = body.get_u64("trace dump dropped")?;
            let count = body.get_u32("trace count")? as usize;
            body.ensure_fits(count, TRACE_ENTRY_BYTES, "traces")?;
            let mut traces = Vec::with_capacity(count);
            for _ in 0..count {
                let seq = body.get_u64("trace seq")?;
                let wire_id = body.get_u32("trace model id")?;
                let model_id = u16::try_from(wire_id).map_err(|_| NetError::Frame {
                    message: format!("trace model id {wire_id} exceeds u16"),
                })?;
                let trace_flags = body.get_u8("trace flags")?;
                let deadline = body.get_u64("trace deadline")? as i64;
                let end_to_end_ns = body.get_u64("trace end-to-end")?;
                let mut stamps = [None; ff_serve::STAGE_COUNT];
                for stamp in &mut stamps {
                    let ns = body.get_u64("trace stamp")?;
                    if ns != TRACE_STAMP_MISSING {
                        *stamp = Some(ns);
                    }
                }
                traces.push(RequestTrace {
                    seq,
                    model_id,
                    sampled: trace_flags & 0b001 != 0,
                    slow: trace_flags & 0b010 != 0,
                    completed: trace_flags & 0b100 != 0,
                    end_to_end_ns,
                    deadline_remaining_micros: (deadline != TRACE_NO_DEADLINE).then_some(deadline),
                    stamps,
                });
            }
            Frame::TraceDumpReply {
                id,
                dropped,
                traces,
            }
        }
        KIND_METRICS_DUMP_REPLY => Frame::MetricsDumpReply {
            id,
            text: body.get_string(MAX_METRICS_TEXT_LEN, "metrics text")?,
        },
        KIND_SHUTDOWN_ACK => Frame::ShutdownAck { id },
        KIND_ERROR => {
            let code_byte = body.get_u8("error code")?;
            let code = ErrorCode::from_wire(code_byte).ok_or(NetError::Frame {
                message: format!("unknown error code {code_byte}"),
            })?;
            let retry_after_millis = if v2 {
                body.get_u32("error retry hint")?
            } else {
                0
            };
            let message = body.get_string(MAX_ERROR_MESSAGE_LEN, "error message")?;
            Frame::Error {
                id,
                code,
                retry_after_millis,
                message,
            }
        }
        other => {
            return Err(NetError::Frame {
                message: format!("unknown frame kind {other}"),
            })
        }
    };
    body.finish("frame body")?;
    reader.finish("frame")?;
    Ok((frame, version, meta))
}

/// Writes one length-prefixed frame to `writer` at the newest protocol
/// version and returns the frame's full wire footprint in bytes (payload
/// plus the 4-byte length prefix — what a per-kind byte counter should
/// account). See [`write_frame_at`] for the version-negotiated form.
///
/// # Errors
///
/// Returns [`NetError::FrameTooLarge`] when the encoded frame exceeds
/// `max_frame_bytes` (checked **before** anything is written, so the
/// stream stays synchronized), and socket-level [`NetError`]s otherwise.
pub fn write_frame(
    writer: &mut impl std::io::Write,
    frame: &Frame,
    max_frame_bytes: usize,
) -> Result<usize> {
    write_frame_at(writer, frame, PROTOCOL_VERSION, max_frame_bytes)
}

/// Writes one length-prefixed frame to `writer`, encoded at the given
/// protocol `version` with default [`FrameMeta`] (how the server answers a
/// version-1 client in its own dialect). Returns the wire footprint as
/// [`write_frame`] does.
///
/// # Errors
///
/// As for [`write_frame`].
///
/// # Panics
///
/// As for [`encode_frame_at`] (unsupported version, ragged batch).
pub fn write_frame_at(
    writer: &mut impl std::io::Write,
    frame: &Frame,
    version: u16,
    max_frame_bytes: usize,
) -> Result<usize> {
    write_frame_meta(
        writer,
        frame,
        version,
        &FrameMeta::default(),
        max_frame_bytes,
    )
}

/// Writes one length-prefixed frame to `writer` with explicit header
/// metadata — the model-addressed, token-carrying form a version-3 client
/// stamps on every request. Returns the wire footprint as [`write_frame`]
/// does.
///
/// # Errors
///
/// As for [`write_frame`].
///
/// # Panics
///
/// As for [`encode_frame_meta`] (unsupported version, oversized token,
/// ragged batch).
pub fn write_frame_meta(
    writer: &mut impl std::io::Write,
    frame: &Frame,
    version: u16,
    meta: &FrameMeta,
    max_frame_bytes: usize,
) -> Result<usize> {
    let bytes = encode_frame_meta(frame, version, meta);
    if bytes.len() > max_frame_bytes {
        return Err(NetError::FrameTooLarge {
            len: bytes.len(),
            max: max_frame_bytes,
        });
    }
    writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
    writer.write_all(&bytes)?;
    writer.flush()?;
    Ok(bytes.len() + 4)
}

/// Reads one length-prefixed frame's bytes from `reader` (the part shared
/// by [`read_frame`] and [`read_frame_meta`]).
fn read_frame_bytes(reader: &mut impl Read, max_frame_bytes: usize) -> Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Closed
        } else {
            NetError::from(e)
        }
    })?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_frame_bytes {
        return Err(NetError::FrameTooLarge {
            len,
            max: max_frame_bytes,
        });
    }
    let mut bytes = vec![0u8; len];
    reader.read_exact(&mut bytes).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Closed
        } else {
            NetError::from(e)
        }
    })?;
    Ok(bytes)
}

/// Reads one length-prefixed frame from `reader`.
///
/// # Errors
///
/// [`NetError::Closed`] on EOF before or inside a frame,
/// [`NetError::Timeout`] when the socket's read timeout expires,
/// [`NetError::FrameTooLarge`] when the declared length exceeds
/// `max_frame_bytes` (the connection cannot be resynchronized afterwards —
/// callers close it), and decode errors as in [`decode_frame`].
pub fn read_frame(reader: &mut impl Read, max_frame_bytes: usize) -> Result<Frame> {
    decode_frame(&read_frame_bytes(reader, max_frame_bytes)?)
}

/// Reads one length-prefixed frame plus its declared version and header
/// metadata from `reader` — the server-side form that learns which model a
/// request addresses and which token it presented.
///
/// # Errors
///
/// As for [`read_frame`].
pub fn read_frame_meta(
    reader: &mut impl Read,
    max_frame_bytes: usize,
) -> Result<(Frame, u16, FrameMeta)> {
    decode_frame_meta(&read_frame_bytes(reader, max_frame_bytes)?)
}

/// Every frame kind, with representative payloads — shared by the unit and
/// fuzz suites (and usable by downstream protocol tooling) so new kinds are
/// automatically covered.
pub fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Predict {
            id: 1,
            deadline_micros: 2_500,
            features: vec![0.5, -1.25, 3.0],
        },
        Frame::PredictBatch {
            id: 2,
            deadline_micros: 0,
            cols: 3,
            data: vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
        },
        Frame::Stats { id: 3 },
        Frame::Health { id: 4 },
        Frame::Shutdown { id: 5 },
        Frame::TraceDump { id: 6, max: 16 },
        Frame::MetricsDump { id: 7 },
        Frame::Labels {
            id: 8,
            labels: vec![7, 0, 9],
        },
        Frame::StatsReply {
            id: 9,
            stats: Box::new(WireStats {
                requests: 100,
                batches: 10,
                max_batch: 32,
                mean_batch: 10.0,
                latency: LatencySummary {
                    count: 100,
                    mean: Duration::from_micros(150),
                    p50: Duration::from_micros(120),
                    p95: Duration::from_micros(400),
                    p99: Duration::from_micros(900),
                    max: Duration::from_millis(2),
                },
                shed_expired: 3,
                rejected_overload: 17,
                rejected_deadline: 2,
                models: vec![
                    WireModelStats {
                        id: 0,
                        name: "default".to_string(),
                        version: 4,
                        swaps: 3,
                        requests: 80,
                        shed_expired: 3,
                        rejected_overload: 17,
                        rejected_deadline: 2,
                        latency: LatencySummary {
                            count: 80,
                            mean: Duration::from_micros(140),
                            p50: Duration::from_micros(110),
                            p95: Duration::from_micros(380),
                            p99: Duration::from_micros(850),
                            max: Duration::from_millis(2),
                        },
                    },
                    WireModelStats {
                        id: 7,
                        name: "candidate".to_string(),
                        version: 1,
                        swaps: 0,
                        requests: 20,
                        shed_expired: 0,
                        rejected_overload: 0,
                        rejected_deadline: 0,
                        latency: LatencySummary {
                            count: 20,
                            mean: Duration::from_micros(180),
                            p50: Duration::from_micros(150),
                            p95: Duration::from_micros(420),
                            p99: Duration::from_micros(950),
                            max: Duration::from_millis(1),
                        },
                    },
                ],
                stages: StageSummaries {
                    queue: LatencySummary {
                        count: 100,
                        mean: Duration::from_micros(40),
                        p50: Duration::from_micros(30),
                        p95: Duration::from_micros(120),
                        p99: Duration::from_micros(300),
                        max: Duration::from_micros(600),
                    },
                    assembly: LatencySummary {
                        count: 100,
                        mean: Duration::from_micros(5),
                        p50: Duration::from_micros(4),
                        p95: Duration::from_micros(12),
                        p99: Duration::from_micros(20),
                        max: Duration::from_micros(45),
                    },
                    gemm: LatencySummary {
                        count: 100,
                        mean: Duration::from_micros(80),
                        p50: Duration::from_micros(70),
                        p95: Duration::from_micros(200),
                        p99: Duration::from_micros(400),
                        max: Duration::from_millis(1),
                    },
                    write: LatencySummary {
                        count: 100,
                        mean: Duration::from_micros(15),
                        p50: Duration::from_micros(12),
                        p95: Duration::from_micros(40),
                        p99: Duration::from_micros(90),
                        max: Duration::from_micros(250),
                    },
                },
            }),
        },
        Frame::HealthReply {
            id: 10,
            input_features: 784,
            num_classes: 10,
            mode: WireMode::Goodness,
            state: WireHealthState::Draining,
            model_version: 4,
        },
        Frame::ShutdownAck { id: 11 },
        Frame::Error {
            id: 12,
            code: ErrorCode::Overloaded,
            retry_after_millis: 25,
            message: "admission queue full".to_string(),
        },
        Frame::TraceDumpReply {
            id: 13,
            dropped: 2,
            traces: vec![
                RequestTrace {
                    seq: 41,
                    model_id: 0,
                    sampled: true,
                    slow: false,
                    completed: true,
                    end_to_end_ns: 910_000,
                    deadline_remaining_micros: Some(4_200),
                    stamps: [
                        Some(0),
                        Some(12_000),
                        Some(18_000),
                        Some(250_000),
                        Some(700_000),
                        Some(900_000),
                    ],
                },
                RequestTrace {
                    seq: 42,
                    model_id: 7,
                    sampled: false,
                    slow: true,
                    completed: false,
                    end_to_end_ns: 12_400_000,
                    deadline_remaining_micros: None,
                    stamps: [Some(0), Some(9_000), Some(15_000), None, None, None],
                },
            ],
        },
        Frame::MetricsDumpReply {
            id: 14,
            text: "serve.batches counter 10\nserve.requests counter 100\n".to_string(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_frame_kind_roundtrips() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let decoded = decode_frame(&bytes).unwrap_or_else(|e| panic!("{frame:?}: {e}"));
            assert_eq!(decoded, frame);
            // Re-encoding is verbatim, like every FF8* format.
            assert_eq!(encode_frame(&decoded), bytes);
        }
    }

    /// A sample frame's payload fields above `version` zeroed/defaulted,
    /// for comparing against an old-version round trip.
    fn downgraded(frame: &Frame, version: u16) -> Frame {
        let mut frame = frame.clone();
        if version < 3 {
            match &mut frame {
                Frame::StatsReply { stats, .. } => {
                    stats.models.clear();
                    stats.stages = StageSummaries::default();
                }
                Frame::HealthReply { model_version, .. } => *model_version = 0,
                _ => {}
            }
        }
        if version < 2 {
            match &mut frame {
                Frame::Predict {
                    deadline_micros, ..
                }
                | Frame::PredictBatch {
                    deadline_micros, ..
                } => *deadline_micros = 0,
                Frame::Error {
                    retry_after_millis, ..
                } => *retry_after_millis = 0,
                Frame::HealthReply { state, .. } => *state = WireHealthState::Ok,
                Frame::StatsReply { stats, .. } => {
                    stats.shed_expired = 0;
                    stats.rejected_overload = 0;
                    stats.rejected_deadline = 0;
                }
                _ => {}
            }
        }
        frame
    }

    #[test]
    fn old_version_frames_roundtrip_with_neutral_defaults() {
        for version in MIN_PROTOCOL_VERSION..PROTOCOL_VERSION {
            for frame in sample_frames() {
                let bytes = encode_frame_at(&frame, version);
                let (decoded, decoded_version, meta) =
                    decode_frame_meta(&bytes).unwrap_or_else(|e| panic!("{frame:?}: {e}"));
                assert_eq!(decoded_version, version);
                assert_eq!(
                    decoded,
                    downgraded(&frame, version),
                    "newer fields drop to defaults at v{version}"
                );
                assert_eq!(meta, FrameMeta::default(), "pre-v3 frames have no meta");
                // Old-version re-encoding is verbatim too.
                assert_eq!(encode_frame_at(&decoded, version), bytes);
            }
        }
    }

    #[test]
    fn newest_version_frames_report_their_version() {
        let (_, version) = decode_frame_versioned(&encode_frame(&Frame::Stats { id: 1 })).unwrap();
        assert_eq!(version, PROTOCOL_VERSION);
    }

    #[test]
    fn frame_meta_roundtrips_model_id_and_token() {
        let meta = FrameMeta {
            model_id: 513,
            token: Some("s3cret-token".to_string()),
        };
        for frame in sample_frames() {
            let bytes = encode_frame_meta(&frame, PROTOCOL_VERSION, &meta);
            let (decoded, version, decoded_meta) =
                decode_frame_meta(&bytes).unwrap_or_else(|e| panic!("{frame:?}: {e}"));
            assert_eq!(version, PROTOCOL_VERSION);
            assert_eq!(decoded, frame);
            assert_eq!(decoded_meta, meta);
        }
        // An absent token encodes as the empty string and decodes to None.
        let bytes = encode_frame_meta(&Frame::Stats { id: 1 }, 3, &FrameMeta::for_model(9));
        let (_, _, decoded_meta) = decode_frame_meta(&bytes).unwrap();
        assert_eq!(decoded_meta, FrameMeta::for_model(9));
        assert_eq!(decoded_meta.token, None);
    }

    #[test]
    fn frame_meta_is_dropped_below_version_3() {
        let meta = FrameMeta {
            model_id: 7,
            token: Some("tok".to_string()),
        };
        for version in [1, 2] {
            let bytes = encode_frame_meta(&Frame::Stats { id: 1 }, version, &meta);
            // Pre-v3 encodings are byte-identical with and without meta:
            // the dialect simply cannot express it.
            assert_eq!(bytes, encode_frame_at(&Frame::Stats { id: 1 }, version));
            let (_, _, decoded_meta) = decode_frame_meta(&bytes).unwrap();
            assert_eq!(decoded_meta, FrameMeta::default());
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the 128-byte limit")]
    fn oversized_auth_tokens_panic_at_encode_time() {
        // Truncating a secret would present a *different* secret.
        let meta = FrameMeta {
            model_id: 0,
            token: Some("x".repeat(MAX_AUTH_TOKEN_LEN + 1)),
        };
        encode_frame_meta(&Frame::Stats { id: 1 }, PROTOCOL_VERSION, &meta);
    }

    #[test]
    fn oversized_auth_tokens_are_rejected_at_decode_time() {
        // Craft a frame whose auth record declares a token longer than the
        // bound: the decoder must refuse before allocating.
        let meta = FrameMeta {
            model_id: 0,
            token: Some("x".repeat(MAX_AUTH_TOKEN_LEN)),
        };
        let mut bytes = encode_frame_meta(&Frame::Stats { id: 1 }, PROTOCOL_VERSION, &meta);
        // Token string length sits after header(8) + auth record len(4).
        let len_offset = 12;
        bytes[len_offset..len_offset + 4]
            .copy_from_slice(&((MAX_AUTH_TOKEN_LEN + 1) as u32).to_le_bytes());
        assert!(decode_frame_meta(&bytes).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot encode FF8P version")]
    fn unsupported_encode_version_panics() {
        encode_frame_at(&Frame::Stats { id: 1 }, PROTOCOL_VERSION + 1);
    }

    #[test]
    fn kind_indices_are_dense_and_names_are_stable() {
        let mut seen = [false; FRAME_KIND_COUNT];
        for frame in sample_frames() {
            let index = frame.kind_index();
            assert!(!seen[index], "duplicate kind index {index}");
            seen[index] = true;
            assert_eq!(frame.kind_name(), Frame::kind_names()[index]);
        }
        assert!(
            seen.iter().all(|&s| s),
            "sample_frames must cover every kind index"
        );
        assert_eq!(Frame::kind_names()[0], "predict");
        assert_eq!(
            Frame::kind_names()[FRAME_KIND_COUNT - 1],
            "metrics_dump_reply"
        );
    }

    #[test]
    fn frame_ids_and_request_classification() {
        for (index, frame) in sample_frames().into_iter().enumerate() {
            assert_eq!(frame.id(), index as u64 + 1);
            assert_eq!(frame.is_request(), index < 7, "{frame:?}");
        }
    }

    #[test]
    fn stream_framing_roundtrips_multiple_frames() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for frame in &frames {
            assert_eq!(
                &read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).unwrap(),
                frame
            );
        }
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(NetError::Closed)
        );
    }

    #[test]
    fn frame_size_limit_is_enforced_both_ways() {
        let frame = Frame::Predict {
            id: 1,
            deadline_micros: 0,
            features: vec![0.0; 100],
        };
        let mut wire = Vec::new();
        assert!(matches!(
            write_frame(&mut wire, &frame, 16),
            Err(NetError::FrameTooLarge { .. })
        ));
        assert!(wire.is_empty(), "nothing written for an oversized frame");
        write_frame(&mut wire, &frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, 16),
            Err(NetError::FrameTooLarge { len: _, max: 16 })
        ));
    }

    #[test]
    fn structural_violations_are_typed_errors() {
        // Zero features.
        let empty = Frame::Predict {
            id: 1,
            deadline_micros: 0,
            features: Vec::new(),
        };
        assert!(matches!(
            decode_frame(&encode_frame(&empty)),
            Err(NetError::Frame { .. })
        ));
        // Zero-geometry batch: patch the rows field (offset 33: header 8 +
        // empty auth record 8 + record len 4 + kind 1 + id 8 + deadline 4)
        // of a valid frame to zero — the encoder refuses to build such a
        // frame itself.
        let batch = Frame::PredictBatch {
            id: 1,
            deadline_micros: 0,
            cols: 3,
            data: vec![0.0; 3],
        };
        let mut degenerate = encode_frame(&batch);
        degenerate[33..37].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&degenerate),
            Err(NetError::Frame { .. })
        ));
        // Unknown kind byte: header(8) + empty auth record(8) + record
        // len(4), kind is byte 20.
        let mut bytes = encode_frame(&Frame::Stats { id: 1 });
        bytes[20] = 77;
        assert!(matches!(decode_frame(&bytes), Err(NetError::Frame { .. })));
        // Wrong magic / version.
        let mut wrong = encode_frame(&Frame::Stats { id: 1 });
        wrong[0] = b'X';
        assert!(matches!(decode_frame(&wrong), Err(NetError::Codec(_))));
        let mut wrong = encode_frame(&Frame::Stats { id: 1 });
        wrong[4] = 9;
        assert!(matches!(decode_frame(&wrong), Err(NetError::Codec(_))));
        // Trailing garbage.
        let mut long = encode_frame(&Frame::Stats { id: 1 });
        long.push(0);
        assert!(matches!(decode_frame(&long), Err(NetError::Codec(_))));
    }

    #[test]
    fn long_error_messages_truncate_to_the_decode_bound() {
        // The server embeds peer-controlled detail in error messages; the
        // encoder must never emit a frame its own clients cannot decode.
        let frame = Frame::Error {
            id: 1,
            code: ErrorCode::Internal,
            retry_after_millis: 0,
            message: "é".repeat(3000), // 6000 bytes, boundary mid-char
        };
        let decoded = decode_frame(&encode_frame(&frame)).unwrap();
        let Frame::Error { message, .. } = decoded else {
            panic!("expected an error frame");
        };
        assert!(message.len() <= MAX_ERROR_MESSAGE_LEN);
        assert!(!message.is_empty());
        assert!(message.chars().all(|c| c == 'é'), "clean UTF-8 boundary");
    }

    #[test]
    #[should_panic(expected = "divide into positive rows")]
    fn ragged_predict_batch_panics_at_encode_time() {
        encode_frame(&Frame::PredictBatch {
            id: 1,
            deadline_micros: 0,
            cols: 3,
            data: vec![0.0; 4],
        });
    }

    #[test]
    fn declared_counts_are_bounded_by_payload() {
        // A corrupt count must fail before allocating, not reserve gigabytes.
        let frame = Frame::Predict {
            id: 1,
            deadline_micros: 0,
            features: vec![1.0, 2.0],
        };
        let mut bytes = encode_frame(&frame);
        // Feature count sits after header(8) + empty auth record(8) +
        // record len(4) + kind(1) + id(8) + deadline(4).
        let count_offset = 33;
        bytes[count_offset..count_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(NetError::Codec(_))));
    }
}
