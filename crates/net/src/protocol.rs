//! The versioned `FF8P` wire protocol.
//!
//! `FF8P` is the third member of the workspace's `FF8*` artifact family
//! (after the `FF8S` frozen-model and `FF8C` checkpoint formats) and reuses
//! the same [`ff_codec`] conventions: 4-byte magic, little-endian `u16`
//! version, reserved flags word, length-prefixed records, panic-free
//! checked reads.
//!
//! # Framing
//!
//! On a TCP stream, every message is one **frame**:
//!
//! ```text
//! frame_len        u32       — bytes that follow (bounded by the peer's
//!                              max-frame-size limit)
//! frame            frame_len × u8 — a complete FF8P artifact:
//!   magic          4 × u8    = "FF8P"
//!   version        u16       = 1 or 2
//!   flags          u16       = 0 (reserved)
//!   record "body":
//!     kind         u8        — see below
//!     kind-specific payload
//! ```
//!
//! # Frame kinds (version 2; `v2:` marks fields absent in version 1)
//!
//! Requests (client → server):
//!
//! ```text
//! 1 Predict       id u64, v2: deadline_micros u32,
//!                 count u32, features count × f32
//! 2 PredictBatch  id u64, v2: deadline_micros u32,
//!                 rows u32, cols u32, data rows·cols × f32
//! 3 Stats         id u64
//! 4 Health        id u64
//! 5 Shutdown      id u64
//! ```
//!
//! Replies (server → client) echo the request's `id`:
//!
//! ```text
//! 129 Labels       id u64, count u32, labels count × u32
//! 130 StatsReply   id u64, requests u64, batches u64, max_batch u64,
//!                  mean_batch f64, latency: count u64 +
//!                  mean/p50/p95/p99/max as u64 nanoseconds,
//!                  v2: shed_expired u64, rejected_overload u64,
//!                  rejected_deadline u64
//! 131 HealthReply  id u64, input_features u32, num_classes u32, mode u8,
//!                  v2: state u8 (0 = ok, 1 = draining)
//! 132 ShutdownAck  id u64
//! 133 Error        id u64, code u8, v2: retry_after_millis u32,
//!                  message string (u32 length + UTF-8)
//! ```
//!
//! # Version negotiation
//!
//! Each frame carries its writer's version; a peer accepts any version in
//! `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION`. Version-1 frames decode with
//! neutral defaults (no deadline, no retry hint, `Ok` health state, zero
//! shed counters), and the server answers every connection **at the version
//! its requests declare**, so old clients keep decoding replies they
//! understand. `deadline_micros` is the request's *remaining* latency
//! budget at send time (0 = unbounded) — a relative budget survives clock
//! skew between peers, unlike an absolute timestamp.
//!
//! Decoding is hardened exactly like the sibling loaders: every declared
//! count is bounded by the remaining payload before allocation
//! ([`ff_codec::Reader::ensure_fits`]), unknown kinds/codes and trailing
//! bytes are typed [`NetError`]s, and the fuzz suite truncates at every
//! offset and flips random bytes without ever observing a panic.

use crate::{ErrorCode, NetError, Result};
use ff_codec::{Reader, Writer};
use ff_metrics::LatencySummary;
use std::io::Read;
use std::time::Duration;

/// The four magic bytes every `FF8P` frame starts with.
pub const MAGIC: [u8; 4] = *b"FF8P";

/// The newest protocol version this build speaks (and writes by default).
pub const PROTOCOL_VERSION: u16 = 2;

/// The oldest protocol version this build still accepts.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Default upper bound on one frame's length (16 MiB — a 5000-row batch of
/// 784 features is ~15 MiB; anything larger should be split).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

const KIND_PREDICT: u8 = 1;
const KIND_PREDICT_BATCH: u8 = 2;
const KIND_STATS: u8 = 3;
const KIND_HEALTH: u8 = 4;
const KIND_SHUTDOWN: u8 = 5;
const KIND_LABELS: u8 = 129;
const KIND_STATS_REPLY: u8 = 130;
const KIND_HEALTH_REPLY: u8 = 131;
const KIND_SHUTDOWN_ACK: u8 = 132;
const KIND_ERROR: u8 = 133;

/// Bound on the length of an error reply's message string.
const MAX_ERROR_MESSAGE_LEN: usize = 4096;

/// Which classification mode the remote server runs, as reported by
/// [`Frame::HealthReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Forward chain + argmax of the final logits.
    Logits,
    /// FF-native per-label goodness sweep.
    Goodness,
}

impl WireMode {
    fn to_wire(self) -> u8 {
        match self {
            WireMode::Logits => 0,
            WireMode::Goodness => 1,
        }
    }

    fn from_wire(byte: u8) -> Result<Self> {
        match byte {
            0 => Ok(WireMode::Logits),
            1 => Ok(WireMode::Goodness),
            other => Err(NetError::Frame {
                message: format!("unknown serve mode {other}"),
            }),
        }
    }
}

/// The remote server's lifecycle phase, as reported by
/// [`Frame::HealthReply`] (protocol version 2; version-1 peers always
/// report [`WireHealthState::Ok`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireHealthState {
    /// Accepting and serving requests normally.
    Ok,
    /// Graceful shutdown in progress: in-flight requests finish, new
    /// predictions are refused with [`ErrorCode::Draining`].
    Draining,
}

impl WireHealthState {
    fn to_wire(self) -> u8 {
        match self {
            WireHealthState::Ok => 0,
            WireHealthState::Draining => 1,
        }
    }

    fn from_wire(byte: u8) -> Result<Self> {
        match byte {
            0 => Ok(WireHealthState::Ok),
            1 => Ok(WireHealthState::Draining),
            other => Err(NetError::Frame {
                message: format!("unknown health state {other}"),
            }),
        }
    }
}

/// Aggregate serving statistics as carried by [`Frame::StatsReply`] — the
/// wire form of [`ff_serve::ServerStats`], with the latency summary
/// flattened to nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireStats {
    /// Requests answered successfully.
    pub requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Queue-to-reply latency distribution.
    pub latency: LatencySummary,
    /// Requests whose deadline expired in the batch queue and were shed
    /// before the GEMM (version 2; zero from version-1 peers).
    pub shed_expired: u64,
    /// Requests refused at admission because the queue was full (version 2;
    /// zero from version-1 peers).
    pub rejected_overload: u64,
    /// Requests refused at admission because their deadline had already
    /// expired (version 2; zero from version-1 peers).
    pub rejected_deadline: u64,
}

impl From<ff_serve::ServerStats> for WireStats {
    fn from(stats: ff_serve::ServerStats) -> Self {
        WireStats {
            requests: stats.requests,
            batches: stats.batches,
            max_batch: stats.max_batch as u64,
            mean_batch: stats.mean_batch,
            latency: stats.latency,
            shed_expired: stats.shed_expired,
            rejected_overload: stats.rejected_overload,
            rejected_deadline: stats.rejected_deadline,
        }
    }
}

/// One `FF8P` message (request or reply). See the [module docs](self) for
/// the byte layout of every kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Classify one sample.
    Predict {
        /// Caller-chosen id echoed by the reply.
        id: u64,
        /// Remaining latency budget in microseconds at send time; 0 means
        /// unbounded. Version-1 peers neither send nor see this field.
        deadline_micros: u32,
        /// The sample's features.
        features: Vec<f32>,
    },
    /// Classify a whole row-major batch in one frame.
    PredictBatch {
        /// Caller-chosen id echoed by the reply.
        id: u64,
        /// Remaining latency budget in microseconds at send time; 0 means
        /// unbounded. Version-1 peers neither send nor see this field.
        deadline_micros: u32,
        /// Features per row (must be positive).
        cols: u32,
        /// Row-major `rows × cols` feature data.
        data: Vec<f32>,
    },
    /// Read the server's aggregate statistics.
    Stats {
        /// Caller-chosen id echoed by the reply.
        id: u64,
    },
    /// Probe the server's identity and liveness.
    Health {
        /// Caller-chosen id echoed by the reply.
        id: u64,
    },
    /// Ask the server to stop accepting connections.
    Shutdown {
        /// Caller-chosen id echoed by the reply.
        id: u64,
    },
    /// Reply to [`Frame::Predict`] / [`Frame::PredictBatch`]: one label per
    /// input row, in input order.
    Labels {
        /// The request's id.
        id: u64,
        /// Predicted class labels.
        labels: Vec<u32>,
    },
    /// Reply to [`Frame::Stats`].
    StatsReply {
        /// The request's id.
        id: u64,
        /// The statistics snapshot.
        stats: WireStats,
    },
    /// Reply to [`Frame::Health`].
    HealthReply {
        /// The request's id.
        id: u64,
        /// Features a request row must provide.
        input_features: u32,
        /// Number of classes the model scores.
        num_classes: u32,
        /// Classification mode the server runs.
        mode: WireMode,
        /// Lifecycle phase (version 2; version-1 peers report
        /// [`WireHealthState::Ok`]).
        state: WireHealthState,
    },
    /// Reply to [`Frame::Shutdown`].
    ShutdownAck {
        /// The request's id.
        id: u64,
    },
    /// Typed error reply to any request.
    Error {
        /// The request's id (0 when the request id could not be decoded).
        id: u64,
        /// Machine-readable category.
        code: ErrorCode,
        /// Server's hint for when a retry might succeed, in milliseconds;
        /// 0 means no hint. Version-1 peers neither send nor see this
        /// field.
        retry_after_millis: u32,
        /// Human-readable detail.
        message: String,
    },
}

impl Frame {
    /// The frame's correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Frame::Predict { id, .. }
            | Frame::PredictBatch { id, .. }
            | Frame::Stats { id }
            | Frame::Health { id }
            | Frame::Shutdown { id }
            | Frame::Labels { id, .. }
            | Frame::StatsReply { id, .. }
            | Frame::HealthReply { id, .. }
            | Frame::ShutdownAck { id }
            | Frame::Error { id, .. } => *id,
        }
    }

    /// `true` for the request kinds a server handles.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Frame::Predict { .. }
                | Frame::PredictBatch { .. }
                | Frame::Stats { .. }
                | Frame::Health { .. }
                | Frame::Shutdown { .. }
        )
    }
}

/// Truncates an error message to the bound [`decode_frame`] enforces, on a
/// UTF-8 boundary, so a frame this module *encodes* is always decodable by
/// a peer running the same protocol version.
fn bounded_error_message(message: &str) -> &str {
    if message.len() <= MAX_ERROR_MESSAGE_LEN {
        return message;
    }
    let mut end = MAX_ERROR_MESSAGE_LEN;
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    &message[..end]
}

/// Serializes a frame into its `FF8P` bytes at the newest protocol version
/// (without the outer `u32` length prefix — [`write_frame`] adds that).
///
/// See [`encode_frame_at`] for the version-negotiated form and the panic
/// contract.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    encode_frame_at(frame, PROTOCOL_VERSION)
}

/// Serializes a frame into its `FF8P` bytes at the given protocol
/// `version`, so a server can answer an old client in the dialect its
/// requests declared. Version-2 fields (deadlines, retry hints, health
/// state, shed counters) are dropped when encoding at version 1.
///
/// Error messages longer than the decoder's 4096-byte bound are truncated
/// (on a UTF-8 boundary) so every emitted frame is decodable by the peer.
///
/// # Panics
///
/// Panics when `version` is outside
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`], or when a
/// [`Frame::PredictBatch`]'s `data` does not divide into positive
/// `cols`-sized rows — a loud local failure instead of a frame whose
/// declared geometry silently drops the ragged tail and fails with an
/// opaque trailing-bytes error on the *peer*. [`crate::Client`] validates
/// its inputs before constructing the frame.
pub fn encode_frame_at(frame: &Frame, version: u16) -> Vec<u8> {
    assert!(
        (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version),
        "cannot encode FF8P version {version} (supported: \
         {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
    );
    let v2 = version >= 2;
    let payload_estimate = match frame {
        Frame::Predict { features, .. } => 20 + 4 * features.len(),
        Frame::PredictBatch { data, .. } => 24 + 4 * data.len(),
        Frame::Labels { labels, .. } => 16 + 4 * labels.len(),
        Frame::Error { message, .. } => 24 + message.len(),
        _ => 104,
    };
    let mut writer = Writer::with_capacity(&MAGIC, version, 12 + payload_estimate);
    writer.record_sized(payload_estimate, |r| match frame {
        Frame::Predict {
            id,
            deadline_micros,
            features,
        } => {
            r.put_u8(KIND_PREDICT);
            r.put_u64(*id);
            if v2 {
                r.put_u32(*deadline_micros);
            }
            r.put_u32(features.len() as u32);
            for &x in features {
                r.put_f32(x);
            }
        }
        Frame::PredictBatch {
            id,
            deadline_micros,
            cols,
            data,
        } => {
            assert!(
                *cols > 0 && data.len() % *cols as usize == 0,
                "PredictBatch data ({} values) must divide into positive rows of {cols}",
                data.len()
            );
            r.put_u8(KIND_PREDICT_BATCH);
            r.put_u64(*id);
            if v2 {
                r.put_u32(*deadline_micros);
            }
            r.put_u32((data.len() / *cols as usize) as u32);
            r.put_u32(*cols);
            for &x in data {
                r.put_f32(x);
            }
        }
        Frame::Stats { id } => {
            r.put_u8(KIND_STATS);
            r.put_u64(*id);
        }
        Frame::Health { id } => {
            r.put_u8(KIND_HEALTH);
            r.put_u64(*id);
        }
        Frame::Shutdown { id } => {
            r.put_u8(KIND_SHUTDOWN);
            r.put_u64(*id);
        }
        Frame::Labels { id, labels } => {
            r.put_u8(KIND_LABELS);
            r.put_u64(*id);
            r.put_u32(labels.len() as u32);
            for &label in labels {
                r.put_u32(label);
            }
        }
        Frame::StatsReply { id, stats } => {
            r.put_u8(KIND_STATS_REPLY);
            r.put_u64(*id);
            r.put_u64(stats.requests);
            r.put_u64(stats.batches);
            r.put_u64(stats.max_batch);
            r.put_f64(stats.mean_batch);
            r.put_u64(stats.latency.count);
            for duration in [
                stats.latency.mean,
                stats.latency.p50,
                stats.latency.p95,
                stats.latency.p99,
                stats.latency.max,
            ] {
                r.put_u64(duration.as_nanos().min(u64::MAX as u128) as u64);
            }
            if v2 {
                r.put_u64(stats.shed_expired);
                r.put_u64(stats.rejected_overload);
                r.put_u64(stats.rejected_deadline);
            }
        }
        Frame::HealthReply {
            id,
            input_features,
            num_classes,
            mode,
            state,
        } => {
            r.put_u8(KIND_HEALTH_REPLY);
            r.put_u64(*id);
            r.put_u32(*input_features);
            r.put_u32(*num_classes);
            r.put_u8(mode.to_wire());
            if v2 {
                r.put_u8(state.to_wire());
            }
        }
        Frame::ShutdownAck { id } => {
            r.put_u8(KIND_SHUTDOWN_ACK);
            r.put_u64(*id);
        }
        Frame::Error {
            id,
            code,
            retry_after_millis,
            message,
        } => {
            r.put_u8(KIND_ERROR);
            r.put_u64(*id);
            r.put_u8(code.to_wire());
            if v2 {
                r.put_u32(*retry_after_millis);
            }
            r.put_string(bounded_error_message(message));
        }
    });
    writer.into_vec()
}

/// Deserializes the bytes produced by [`encode_frame`] /
/// [`encode_frame_at`], discarding the peer's declared version. Servers use
/// [`decode_frame_versioned`] to learn which dialect to answer in.
///
/// # Errors
///
/// Never panics: malformed input maps to [`NetError::Codec`] (header or
/// truncation problems) or [`NetError::Frame`] (structural violations).
pub fn decode_frame(bytes: &[u8]) -> Result<Frame> {
    decode_frame_versioned(bytes).map(|(frame, _)| frame)
}

/// Deserializes a frame and reports the protocol version it was written
/// at, accepting any version in
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`]. Version-1 frames
/// decode with neutral defaults for the version-2 fields.
///
/// # Errors
///
/// As for [`decode_frame`].
pub fn decode_frame_versioned(bytes: &[u8]) -> Result<(Frame, u16)> {
    let (mut reader, version) =
        Reader::with_versions(bytes, &MAGIC, MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION)?;
    let v2 = version >= 2;
    let mut body = reader.record("frame body")?;
    let kind = body.get_u8("frame kind")?;
    let id = body.get_u64("frame id")?;
    let frame = match kind {
        KIND_PREDICT => {
            let deadline_micros = if v2 {
                body.get_u32("predict deadline")?
            } else {
                0
            };
            let count = body.get_u32("feature count")? as usize;
            if count == 0 {
                return Err(NetError::Frame {
                    message: "predict frame with zero features".to_string(),
                });
            }
            body.ensure_fits(count, 4, "features")?;
            let mut features = Vec::with_capacity(count);
            for _ in 0..count {
                features.push(body.get_f32("features")?);
            }
            Frame::Predict {
                id,
                deadline_micros,
                features,
            }
        }
        KIND_PREDICT_BATCH => {
            let deadline_micros = if v2 {
                body.get_u32("batch deadline")?
            } else {
                0
            };
            let rows = body.get_u32("batch rows")? as usize;
            let cols = body.get_u32("batch cols")?;
            if rows == 0 || cols == 0 {
                return Err(NetError::Frame {
                    message: format!("predict-batch frame with empty geometry [{rows}, {cols}]"),
                });
            }
            let len = rows.checked_mul(cols as usize).ok_or(NetError::Frame {
                message: format!("batch geometry [{rows}, {cols}] overflows"),
            })?;
            body.ensure_fits(len, 4, "batch data")?;
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(body.get_f32("batch data")?);
            }
            Frame::PredictBatch {
                id,
                deadline_micros,
                cols,
                data,
            }
        }
        KIND_STATS => Frame::Stats { id },
        KIND_HEALTH => Frame::Health { id },
        KIND_SHUTDOWN => Frame::Shutdown { id },
        KIND_LABELS => {
            let count = body.get_u32("label count")? as usize;
            body.ensure_fits(count, 4, "labels")?;
            let mut labels = Vec::with_capacity(count);
            for _ in 0..count {
                labels.push(body.get_u32("labels")?);
            }
            Frame::Labels { id, labels }
        }
        KIND_STATS_REPLY => {
            let requests = body.get_u64("stats requests")?;
            let batches = body.get_u64("stats batches")?;
            let max_batch = body.get_u64("stats max batch")?;
            let mean_batch = body.get_f64("stats mean batch")?;
            let count = body.get_u64("latency count")?;
            let mut nanos = [0u64; 5];
            for slot in &mut nanos {
                *slot = body.get_u64("latency quantile")?;
            }
            let (shed_expired, rejected_overload, rejected_deadline) = if v2 {
                (
                    body.get_u64("stats shed expired")?,
                    body.get_u64("stats rejected overload")?,
                    body.get_u64("stats rejected deadline")?,
                )
            } else {
                (0, 0, 0)
            };
            Frame::StatsReply {
                id,
                stats: WireStats {
                    requests,
                    batches,
                    max_batch,
                    mean_batch,
                    latency: LatencySummary {
                        count,
                        mean: Duration::from_nanos(nanos[0]),
                        p50: Duration::from_nanos(nanos[1]),
                        p95: Duration::from_nanos(nanos[2]),
                        p99: Duration::from_nanos(nanos[3]),
                        max: Duration::from_nanos(nanos[4]),
                    },
                    shed_expired,
                    rejected_overload,
                    rejected_deadline,
                },
            }
        }
        KIND_HEALTH_REPLY => Frame::HealthReply {
            id,
            input_features: body.get_u32("health input features")?,
            num_classes: body.get_u32("health num classes")?,
            mode: WireMode::from_wire(body.get_u8("health mode")?)?,
            state: if v2 {
                WireHealthState::from_wire(body.get_u8("health state")?)?
            } else {
                WireHealthState::Ok
            },
        },
        KIND_SHUTDOWN_ACK => Frame::ShutdownAck { id },
        KIND_ERROR => {
            let code_byte = body.get_u8("error code")?;
            let code = ErrorCode::from_wire(code_byte).ok_or(NetError::Frame {
                message: format!("unknown error code {code_byte}"),
            })?;
            let retry_after_millis = if v2 {
                body.get_u32("error retry hint")?
            } else {
                0
            };
            let message = body.get_string(MAX_ERROR_MESSAGE_LEN, "error message")?;
            Frame::Error {
                id,
                code,
                retry_after_millis,
                message,
            }
        }
        other => {
            return Err(NetError::Frame {
                message: format!("unknown frame kind {other}"),
            })
        }
    };
    body.finish("frame body")?;
    reader.finish("frame")?;
    Ok((frame, version))
}

/// Writes one length-prefixed frame to `writer` at the newest protocol
/// version. See [`write_frame_at`] for the version-negotiated form.
///
/// # Errors
///
/// Returns [`NetError::FrameTooLarge`] when the encoded frame exceeds
/// `max_frame_bytes` (checked **before** anything is written, so the
/// stream stays synchronized), and socket-level [`NetError`]s otherwise.
pub fn write_frame(
    writer: &mut impl std::io::Write,
    frame: &Frame,
    max_frame_bytes: usize,
) -> Result<()> {
    write_frame_at(writer, frame, PROTOCOL_VERSION, max_frame_bytes)
}

/// Writes one length-prefixed frame to `writer`, encoded at the given
/// protocol `version` (how the server answers a version-1 client in its
/// own dialect).
///
/// # Errors
///
/// As for [`write_frame`].
///
/// # Panics
///
/// As for [`encode_frame_at`] (unsupported version, ragged batch).
pub fn write_frame_at(
    writer: &mut impl std::io::Write,
    frame: &Frame,
    version: u16,
    max_frame_bytes: usize,
) -> Result<()> {
    let bytes = encode_frame_at(frame, version);
    if bytes.len() > max_frame_bytes {
        return Err(NetError::FrameTooLarge {
            len: bytes.len(),
            max: max_frame_bytes,
        });
    }
    writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
    writer.write_all(&bytes)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame from `reader`.
///
/// # Errors
///
/// [`NetError::Closed`] on EOF before or inside a frame,
/// [`NetError::Timeout`] when the socket's read timeout expires,
/// [`NetError::FrameTooLarge`] when the declared length exceeds
/// `max_frame_bytes` (the connection cannot be resynchronized afterwards —
/// callers close it), and decode errors as in [`decode_frame`].
pub fn read_frame(reader: &mut impl Read, max_frame_bytes: usize) -> Result<Frame> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Closed
        } else {
            NetError::from(e)
        }
    })?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_frame_bytes {
        return Err(NetError::FrameTooLarge {
            len,
            max: max_frame_bytes,
        });
    }
    let mut bytes = vec![0u8; len];
    reader.read_exact(&mut bytes).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Closed
        } else {
            NetError::from(e)
        }
    })?;
    decode_frame(&bytes)
}

/// Every frame kind, with representative payloads — shared by the unit and
/// fuzz suites (and usable by downstream protocol tooling) so new kinds are
/// automatically covered.
pub fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Predict {
            id: 1,
            deadline_micros: 2_500,
            features: vec![0.5, -1.25, 3.0],
        },
        Frame::PredictBatch {
            id: 2,
            deadline_micros: 0,
            cols: 3,
            data: vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
        },
        Frame::Stats { id: 3 },
        Frame::Health { id: 4 },
        Frame::Shutdown { id: 5 },
        Frame::Labels {
            id: 6,
            labels: vec![7, 0, 9],
        },
        Frame::StatsReply {
            id: 7,
            stats: WireStats {
                requests: 100,
                batches: 10,
                max_batch: 32,
                mean_batch: 10.0,
                latency: LatencySummary {
                    count: 100,
                    mean: Duration::from_micros(150),
                    p50: Duration::from_micros(120),
                    p95: Duration::from_micros(400),
                    p99: Duration::from_micros(900),
                    max: Duration::from_millis(2),
                },
                shed_expired: 3,
                rejected_overload: 17,
                rejected_deadline: 2,
            },
        },
        Frame::HealthReply {
            id: 8,
            input_features: 784,
            num_classes: 10,
            mode: WireMode::Goodness,
            state: WireHealthState::Draining,
        },
        Frame::ShutdownAck { id: 9 },
        Frame::Error {
            id: 10,
            code: ErrorCode::Overloaded,
            retry_after_millis: 25,
            message: "admission queue full".to_string(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_frame_kind_roundtrips() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let decoded = decode_frame(&bytes).unwrap_or_else(|e| panic!("{frame:?}: {e}"));
            assert_eq!(decoded, frame);
            // Re-encoding is verbatim, like every FF8* format.
            assert_eq!(encode_frame(&decoded), bytes);
        }
    }

    /// A sample frame's v2-only payload zeroed/defaulted, for comparing
    /// against a version-1 round trip.
    fn downgraded(frame: &Frame) -> Frame {
        let mut frame = frame.clone();
        match &mut frame {
            Frame::Predict {
                deadline_micros, ..
            }
            | Frame::PredictBatch {
                deadline_micros, ..
            } => *deadline_micros = 0,
            Frame::Error {
                retry_after_millis, ..
            } => *retry_after_millis = 0,
            Frame::HealthReply { state, .. } => *state = WireHealthState::Ok,
            Frame::StatsReply { stats, .. } => {
                stats.shed_expired = 0;
                stats.rejected_overload = 0;
                stats.rejected_deadline = 0;
            }
            _ => {}
        }
        frame
    }

    #[test]
    fn version_1_frames_roundtrip_with_neutral_defaults() {
        for frame in sample_frames() {
            let bytes = encode_frame_at(&frame, 1);
            let (decoded, version) =
                decode_frame_versioned(&bytes).unwrap_or_else(|e| panic!("{frame:?}: {e}"));
            assert_eq!(version, 1);
            assert_eq!(decoded, downgraded(&frame), "v2 fields drop to defaults");
            // Version-1 re-encoding is verbatim too.
            assert_eq!(encode_frame_at(&decoded, 1), bytes);
        }
    }

    #[test]
    fn version_2_frames_report_their_version() {
        let (_, version) = decode_frame_versioned(&encode_frame(&Frame::Stats { id: 1 })).unwrap();
        assert_eq!(version, PROTOCOL_VERSION);
    }

    #[test]
    #[should_panic(expected = "cannot encode FF8P version")]
    fn unsupported_encode_version_panics() {
        encode_frame_at(&Frame::Stats { id: 1 }, PROTOCOL_VERSION + 1);
    }

    #[test]
    fn frame_ids_and_request_classification() {
        for (index, frame) in sample_frames().into_iter().enumerate() {
            assert_eq!(frame.id(), index as u64 + 1);
            assert_eq!(frame.is_request(), index < 5, "{frame:?}");
        }
    }

    #[test]
    fn stream_framing_roundtrips_multiple_frames() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for frame in &frames {
            assert_eq!(
                &read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).unwrap(),
                frame
            );
        }
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(NetError::Closed)
        );
    }

    #[test]
    fn frame_size_limit_is_enforced_both_ways() {
        let frame = Frame::Predict {
            id: 1,
            deadline_micros: 0,
            features: vec![0.0; 100],
        };
        let mut wire = Vec::new();
        assert!(matches!(
            write_frame(&mut wire, &frame, 16),
            Err(NetError::FrameTooLarge { .. })
        ));
        assert!(wire.is_empty(), "nothing written for an oversized frame");
        write_frame(&mut wire, &frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, 16),
            Err(NetError::FrameTooLarge { len: _, max: 16 })
        ));
    }

    #[test]
    fn structural_violations_are_typed_errors() {
        // Zero features.
        let empty = Frame::Predict {
            id: 1,
            deadline_micros: 0,
            features: Vec::new(),
        };
        assert!(matches!(
            decode_frame(&encode_frame(&empty)),
            Err(NetError::Frame { .. })
        ));
        // Zero-geometry batch: patch the rows field (offset 25: header 8 +
        // record len 4 + kind 1 + id 8 + deadline 4) of a valid frame to
        // zero — the encoder refuses to build such a frame itself.
        let batch = Frame::PredictBatch {
            id: 1,
            deadline_micros: 0,
            cols: 3,
            data: vec![0.0; 3],
        };
        let mut degenerate = encode_frame(&batch);
        degenerate[25..29].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&degenerate),
            Err(NetError::Frame { .. })
        ));
        // Unknown kind byte: header(8) + record len(4), kind is byte 12.
        let mut bytes = encode_frame(&Frame::Stats { id: 1 });
        bytes[12] = 77;
        assert!(matches!(decode_frame(&bytes), Err(NetError::Frame { .. })));
        // Wrong magic / version.
        let mut wrong = encode_frame(&Frame::Stats { id: 1 });
        wrong[0] = b'X';
        assert!(matches!(decode_frame(&wrong), Err(NetError::Codec(_))));
        let mut wrong = encode_frame(&Frame::Stats { id: 1 });
        wrong[4] = 9;
        assert!(matches!(decode_frame(&wrong), Err(NetError::Codec(_))));
        // Trailing garbage.
        let mut long = encode_frame(&Frame::Stats { id: 1 });
        long.push(0);
        assert!(matches!(decode_frame(&long), Err(NetError::Codec(_))));
    }

    #[test]
    fn long_error_messages_truncate_to_the_decode_bound() {
        // The server embeds peer-controlled detail in error messages; the
        // encoder must never emit a frame its own clients cannot decode.
        let frame = Frame::Error {
            id: 1,
            code: ErrorCode::Internal,
            retry_after_millis: 0,
            message: "é".repeat(3000), // 6000 bytes, boundary mid-char
        };
        let decoded = decode_frame(&encode_frame(&frame)).unwrap();
        let Frame::Error { message, .. } = decoded else {
            panic!("expected an error frame");
        };
        assert!(message.len() <= MAX_ERROR_MESSAGE_LEN);
        assert!(!message.is_empty());
        assert!(message.chars().all(|c| c == 'é'), "clean UTF-8 boundary");
    }

    #[test]
    #[should_panic(expected = "divide into positive rows")]
    fn ragged_predict_batch_panics_at_encode_time() {
        encode_frame(&Frame::PredictBatch {
            id: 1,
            deadline_micros: 0,
            cols: 3,
            data: vec![0.0; 4],
        });
    }

    #[test]
    fn declared_counts_are_bounded_by_payload() {
        // A corrupt count must fail before allocating, not reserve gigabytes.
        let frame = Frame::Predict {
            id: 1,
            deadline_micros: 0,
            features: vec![1.0, 2.0],
        };
        let mut bytes = encode_frame(&frame);
        // Feature count sits after header(8) + record len(4) + kind(1) +
        // id(8) + deadline(4).
        let count_offset = 25;
        bytes[count_offset..count_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(NetError::Codec(_))));
    }
}
