//! Cross-crate integration tests: data → quantization → layers pipeline
//! invariants used by the FF-INT8 dataflow (paper Fig. 4).

use ff_int8::data::{embed_label, positive_negative_sets, synthetic_mnist, SyntheticConfig};
use ff_int8::nn::{Dense, ForwardMode, Layer};
use ff_int8::quant::{QuantConfig, QuantTensor, Rounding};
use ff_int8::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn int8_forward_of_real_batches_tracks_fp32() {
    let (train_set, _) = synthetic_mnist(&SyntheticConfig::small());
    let mut rng = StdRng::seed_from_u64(1);
    let batch = &train_set.batches(16, false, &mut rng)[0];
    let flat = batch
        .images
        .reshape(&[batch.images.rows(), batch.images.cols()])
        .expect("flatten");
    let mut layer = Dense::new(784, 64, true, &mut rng);
    let y32 = layer
        .forward(&flat, ForwardMode::Fp32)
        .expect("fp32 forward");
    let y8 = layer
        .forward(&flat, ForwardMode::Int8(Rounding::Nearest))
        .expect("int8 forward");
    let rel = y32.sub(&y8).expect("shapes match").frobenius_norm() / (y32.frobenius_norm() + 1e-6);
    assert!(rel < 0.1, "INT8 forward relative error {rel}");
}

#[test]
fn positive_and_negative_sets_share_image_content() {
    let (train_set, _) = synthetic_mnist(&SyntheticConfig::small());
    let mut rng = StdRng::seed_from_u64(2);
    let batch = &train_set.batches(8, false, &mut rng)[0];
    let flat = batch
        .images
        .reshape(&[batch.images.rows(), batch.images.cols()])
        .expect("flatten");
    let (pos, neg) = positive_negative_sets(&flat, &batch.labels, 10, &mut rng).expect("sets");
    // Identical outside the 10 label slots.
    for i in 0..pos.rows() {
        for j in 10..pos.cols() {
            assert_eq!(pos.row(i)[j], neg.row(i)[j]);
        }
        // True label set only in the positive sample.
        assert_eq!(pos.row(i)[batch.labels[i]], 1.0);
        assert_eq!(neg.row(i)[batch.labels[i]], 0.0);
    }
}

#[test]
fn label_embedding_survives_quantization() {
    // The one-hot label slot must stay the dominant value in its column after
    // INT8 quantization, otherwise the FF objective loses its supervision.
    let images = Tensor::full(&[4, 784], 0.4);
    let embedded = embed_label(&images, &[0, 3, 5, 9], 10).expect("embedding");
    let mut rng = StdRng::seed_from_u64(3);
    let q =
        QuantTensor::quantize_with_rng(&embedded, QuantConfig::new(Rounding::Nearest), &mut rng);
    let back = q.dequantize();
    for (i, &label) in [0usize, 3, 5, 9].iter().enumerate() {
        let row = back.row(i);
        assert!(row[label] > 0.9, "label value collapsed to {}", row[label]);
        for (j, &v) in row.iter().enumerate().take(10) {
            if j != label {
                assert!(v.abs() < 0.1, "non-label slot {j} has value {v}");
            }
        }
    }
}

#[test]
fn quantization_error_is_bounded_on_real_gradients() {
    let (train_set, _) = synthetic_mnist(&SyntheticConfig::small());
    let mut rng = StdRng::seed_from_u64(4);
    let batch = &train_set.batches(16, false, &mut rng)[0];
    let flat = batch
        .images
        .reshape(&[batch.images.rows(), batch.images.cols()])
        .expect("flatten");
    let mut layer = Dense::new(784, 32, true, &mut rng);
    let y = layer.forward(&flat, ForwardMode::Fp32).expect("forward");
    layer.backward(&Tensor::ones(y.shape())).expect("backward");
    let grad = layer.grad_weight().clone();
    let q = QuantTensor::quantize_with_rng(&grad, QuantConfig::new(Rounding::Stochastic), &mut rng);
    let max_err = grad.sub(&q.dequantize()).expect("shapes").max_abs();
    assert!(max_err <= q.scale() + 1e-6);
}
