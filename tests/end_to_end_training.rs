//! Cross-crate integration tests: end-to-end training with every algorithm.

use ff_int8::core::{train, Algorithm, TrainOptions};
use ff_int8::data::{synthetic_mnist, Dataset, SyntheticConfig};
use ff_int8::models::small_mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> (Dataset, Dataset) {
    synthetic_mnist(&SyntheticConfig {
        train_size: 400,
        test_size: 120,
        noise_std: 0.2,
        max_shift: 0,
        seed: 13,
    })
}

fn options(epochs: usize, lr: f32) -> TrainOptions {
    TrainOptions {
        epochs,
        learning_rate: lr,
        max_eval_samples: 120,
        ..TrainOptions::default()
    }
}

#[test]
fn every_algorithm_completes_one_epoch() {
    let (train_set, test_set) = dataset();
    for algorithm in [
        Algorithm::BpFp32,
        Algorithm::BpInt8,
        Algorithm::BpUi8,
        Algorithm::BpGdai8,
        Algorithm::FfInt8 { lookahead: true },
        Algorithm::FfInt8 { lookahead: false },
        Algorithm::FfFp32 { lookahead: true },
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = small_mlp(784, &[32], 10, &mut rng);
        let history = train(
            &mut net,
            &train_set,
            &test_set,
            algorithm,
            &options(1, 0.05),
        )
        .unwrap_or_else(|e| panic!("{} failed: {e}", algorithm.label()));
        assert_eq!(history.len(), 1, "{}", algorithm.label());
        assert!(
            history.final_loss().unwrap().is_finite(),
            "{} produced a non-finite loss",
            algorithm.label()
        );
    }
}

#[test]
fn bp_fp32_learns_the_task() {
    let (train_set, test_set) = dataset();
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = small_mlp(784, &[64], 10, &mut rng);
    let history = train(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::BpFp32,
        &options(6, 0.05),
    )
    .expect("training failed");
    assert!(
        history.final_accuracy().unwrap() > 0.7,
        "BP-FP32 accuracy {:?}",
        history.final_accuracy()
    );
}

#[test]
fn ff_int8_learns_the_task_and_tracks_fp32_backprop() {
    // Table V's headline accuracy claim, at reduced scale: FF-INT8 reaches an
    // accuracy in the same range as BP-FP32 (and far above chance).
    let (train_set, test_set) = dataset();
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = small_mlp(784, &[64, 64], 10, &mut rng);
    let history = train(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &options(10, 0.2),
    )
    .expect("training failed");
    let accuracy = history.final_accuracy().unwrap();
    assert!(accuracy > 0.6, "FF-INT8 accuracy {accuracy}");
}

#[test]
fn ff_int8_accuracy_is_competitive_with_fp32_backprop() {
    // The paper's headline accuracy claim (Table V): FF-INT8 stays within a
    // small margin of BP-FP32 while training entirely in INT8. At this
    // reduced scale we allow a generous margin but require FF-INT8 to be far
    // above chance and in the same band as the FP32 baseline.
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 500,
        test_size: 150,
        noise_std: 0.3,
        max_shift: 1,
        seed: 17,
    });
    let mut rng = StdRng::seed_from_u64(4);
    let mut ff_net = small_mlp(784, &[64, 64], 10, &mut rng);
    let ff = train(
        &mut ff_net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &options(12, 0.2),
    )
    .expect("FF-INT8 training failed")
    .best_test_accuracy()
    .unwrap();

    let mut rng = StdRng::seed_from_u64(4);
    let mut bp_net = small_mlp(784, &[64, 64], 10, &mut rng);
    let bp_fp32 = train(
        &mut bp_net,
        &train_set,
        &test_set,
        Algorithm::BpFp32,
        &options(8, 0.05),
    )
    .expect("BP-FP32 training failed")
    .best_test_accuracy()
    .unwrap();

    assert!(ff > 0.6, "FF-INT8 accuracy {ff} not far above chance");
    assert!(
        ff >= bp_fp32 - 0.3,
        "FF-INT8 ({ff}) is not in the same band as BP-FP32 ({bp_fp32})"
    );
}

#[test]
fn lookahead_does_not_hurt_final_accuracy() {
    let (train_set, test_set) = dataset();
    let run = |lookahead: bool| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = small_mlp(784, &[48, 48], 10, &mut rng);
        train(
            &mut net,
            &train_set,
            &test_set,
            Algorithm::FfInt8 { lookahead },
            &options(8, 0.2),
        )
        .expect("training failed")
        .best_test_accuracy()
        .unwrap()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with + 0.1 >= without,
        "look-ahead ({with}) regressed accuracy vs vanilla FF ({without})"
    );
}
