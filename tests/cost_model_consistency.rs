//! Cross-crate integration tests: architecture specs feeding the edge cost
//! model reproduce the orderings behind the paper's Tables IV and V.

use ff_int8::edge::{AlgorithmKind, CostModel, TrainingRun};
use ff_int8::models::specs;

fn run() -> TrainingRun {
    TrainingRun {
        batch_size: 32,
        batches_per_epoch: 1563,
        epochs: 200,
    }
}

#[test]
fn table2_parameter_counts_match_the_paper() {
    let expected = [
        ("MLP", 1.79),
        ("MobileNet-V2", 2.24),
        ("EfficientNet-B0", 3.39),
        ("ResNet-18", 11.19),
    ];
    for (spec, (name, millions)) in specs::table2_specs().iter().zip(expected) {
        assert!(spec.name.contains(name) || name == "MLP");
        let rel = (spec.param_millions() - millions).abs() / millions;
        assert!(
            rel < 0.15,
            "{}: {:.2}M vs paper {millions}M",
            spec.name,
            spec.param_millions()
        );
    }
}

#[test]
fn ff_int8_wins_time_energy_memory_against_every_baseline() {
    let model = CostModel::jetson_orin_nano();
    for spec in specs::table2_specs() {
        let ff = model.estimate(AlgorithmKind::FfInt8, &spec, &run());
        for baseline in [
            AlgorithmKind::BpFp32,
            AlgorithmKind::BpUi8,
            AlgorithmKind::BpGdai8,
        ] {
            let other = model.estimate(baseline, &spec, &run());
            assert!(
                ff.time_s < other.time_s,
                "{} time vs {:?}",
                spec.name,
                baseline
            );
            assert!(
                ff.energy_j < other.energy_j,
                "{} energy vs {:?}",
                spec.name,
                baseline
            );
            assert!(
                ff.memory_bytes < other.memory_bytes,
                "{} memory vs {:?}",
                spec.name,
                baseline
            );
        }
    }
}

#[test]
fn savings_vs_state_of_the_art_are_in_a_plausible_band() {
    // Paper abstract: 4.6% faster, 8.3% energy savings, 27.0% memory savings
    // relative to BP-GDAI8. The analytic model should land in the same
    // direction with savings below 60% (i.e. not absurdly optimistic).
    let model = CostModel::jetson_orin_nano();
    let mut time = 0.0;
    let mut energy = 0.0;
    let mut memory = 0.0;
    let all = specs::table2_specs();
    for spec in &all {
        let ff = model.estimate(AlgorithmKind::FfInt8, spec, &run());
        let gdai8 = model.estimate(AlgorithmKind::BpGdai8, spec, &run());
        time += 1.0 - ff.time_s / gdai8.time_s;
        energy += 1.0 - ff.energy_j / gdai8.energy_j;
        memory += 1.0 - ff.memory_bytes as f64 / gdai8.memory_bytes as f64;
    }
    let n = all.len() as f64;
    for (label, saving) in [
        ("time", time / n),
        ("energy", energy / n),
        ("memory", memory / n),
    ] {
        assert!(
            saving > 0.0 && saving < 0.6,
            "average {label} saving {saving} outside the plausible band"
        );
    }
}

#[test]
fn every_configuration_fits_on_the_jetson() {
    let model = CostModel::jetson_orin_nano();
    for spec in specs::table2_specs() {
        for algorithm in AlgorithmKind::table5_lineup() {
            assert!(
                model.fits_in_memory(algorithm, &spec, 32),
                "{} with {:?} exceeds 4 GB",
                spec.name,
                algorithm
            );
        }
    }
}

#[test]
fn resnet_dominates_cost_and_mlp_is_cheapest() {
    // Table V ordering: ResNet-18 rows have the largest time/energy/memory,
    // the MLP rows the smallest, for every algorithm.
    let model = CostModel::jetson_orin_nano();
    let all = specs::table2_specs();
    let mlp = &all[0];
    let resnet = &all[3];
    for algorithm in AlgorithmKind::table5_lineup() {
        let small = model.estimate(algorithm, mlp, &run());
        let large = model.estimate(algorithm, resnet, &run());
        assert!(large.time_s > small.time_s);
        assert!(large.energy_j > small.energy_j);
        assert!(large.memory_bytes > small.memory_bytes);
    }
}
