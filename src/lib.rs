//! # ff-int8
//!
//! Facade crate for the FF-INT8 reproduction workspace. It re-exports the
//! public API of every member crate so examples and downstream users can
//! depend on a single package.
//!
//! See the repository `README.md` for the architecture overview and
//! `DESIGN.md` for the per-experiment index.
//!
//! # Examples
//!
//! ```
//! use ff_int8::tensor::Tensor;
//!
//! let t = Tensor::ones(&[2, 2]);
//! assert_eq!(t.sum(), 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ff_codec as codec;
pub use ff_core as core;
pub use ff_data as data;
pub use ff_dist as dist;
pub use ff_edge as edge;
pub use ff_metrics as metrics;
pub use ff_models as models;
pub use ff_net as net;
pub use ff_nn as nn;
pub use ff_quant as quant;
pub use ff_serve as serve;
pub use ff_tensor as tensor;
pub use ff_trace as trace;
