//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small API subset it actually uses: [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`thread_rng`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64, which matches the
//! statistical quality the workspace needs (deterministic, well-mixed streams
//! for reproducible experiments). It does **not** reproduce the exact streams
//! of the upstream `rand` crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's full range
/// (the `Standard` distribution of upstream `rand`).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a bounded range.
///
/// Mirrors `rand::distributions::uniform::SampleUniform` closely enough that
/// type inference behaves like upstream (a single blanket [`SampleRange`]
/// impl per range kind, so `gen_range(0.2..0.8) * x_f32` infers `f32`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[low, high)` when `inclusive` is false, `[low, high]`
    /// otherwise.
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing random value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator seeded from another generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Result<Self, core::convert::Infallible> {
        Ok(Self::seed_from_u64(rng.next_u64()))
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Exposes the generator's full 256-bit internal state, so callers
        /// that persist training runs (checkpoint/resume) can capture the
        /// stream position exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously returned by
        /// [`StdRng::state`], continuing the stream bit-exactly.
        ///
        /// The all-zero state is invalid for xoshiro256++ (the generator
        /// would emit zeros forever); it is replaced by the same non-zero
        /// fallback `seed_from_u64` uses.
        pub fn from_state(state: [u64; 4]) -> Self {
            if state == [0; 4] {
                return Self::seed_from_u64(0x5EED);
            }
            StdRng { s: state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0xBAD_5EED, 1];
            }
            StdRng { s }
        }
    }

    /// A per-call generator used by `thread_rng`.
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::time::{SystemTime, UNIX_EPOCH};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let tick = COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0x5EED);
            ThreadRng {
                inner: StdRng::seed_from_u64(nanos ^ tick.rotate_left(17)),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Returns a fresh, loosely entropy-seeded generator (mirrors
/// `rand::thread_rng`, without the thread-local caching).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u64_pub();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        // The degenerate all-zero state maps to a usable generator.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64_pub(), z.next_u64_pub());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let i = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_f32_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f32 = (0..10_000).map(|_| rng.gen::<f32>()).sum::<f32>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
