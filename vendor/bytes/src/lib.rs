//! Offline stand-in for the `bytes` crate.
//!
//! [`BytesMut`] wraps a `Vec<u8>` and [`BufMut`] provides the `put_*`
//! writers the workspace uses for compact dataset serialization.

#![forbid(unsafe_code)]

/// A growable byte buffer backed by `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes the buffer and returns the underlying vector (stands in for
    /// `freeze()` + `to_vec()`).
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Byte-writing operations, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.inner.push(value);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, BytesMut};

    #[test]
    fn put_and_read_back() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u8(1);
        buf.put_slice(&[2, 3]);
        assert_eq!(buf.len(), 3);
        assert_eq!(&buf[..], &[1, 2, 3]);
        assert_eq!(buf.to_vec(), vec![1, 2, 3]);
        assert!(!buf.is_empty());
    }
}
