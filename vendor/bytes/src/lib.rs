//! Offline stand-in for the `bytes` crate.
//!
//! [`BytesMut`] wraps a `Vec<u8>` and [`BufMut`] provides the `put_*`
//! writers the workspace uses for compact dataset serialization and the
//! `ff-serve` frozen-model artifact format. [`Buf`] (implemented for
//! `&[u8]`) provides the matching cursor-style `get_*` readers.
//!
//! Mirroring upstream `bytes`, the readers **panic** on buffer underflow;
//! callers that must never panic (the `ff-serve` artifact loader) check
//! [`Buf::remaining`] before every read.

#![forbid(unsafe_code)]

/// A growable byte buffer backed by `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes the buffer and returns the underlying vector (stands in for
    /// `freeze()` + `to_vec()`).
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Moves the written bytes out without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Byte-writing operations, mirroring `bytes::BufMut`.
///
/// Multi-byte writers use explicit little-endian encoding (the `_le`
/// variants upstream `bytes` provides), which is what the `ff-serve`
/// artifact format is defined in.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single signed byte (two's complement).
    fn put_i8(&mut self, value: i8) {
        self.put_u8(value as u8);
    }

    /// Appends a `u16` in little-endian byte order.
    fn put_u16_le(&mut self, value: u16) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a `u32` in little-endian byte order.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a `u64` in little-endian byte order.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern in little-endian order.
    fn put_f32_le(&mut self, value: f32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern in little-endian order.
    fn put_f64_le(&mut self, value: f64) {
        self.put_slice(&value.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.inner.push(value);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Cursor-style byte-reading operations, mirroring `bytes::Buf`.
///
/// Implemented for `&[u8]`: every read advances the slice in place, so a
/// parser threads one `&mut &[u8]` through its record readers.
///
/// # Panics
///
/// As in upstream `bytes`, every `get_*` method panics when fewer than the
/// required bytes remain. Check [`Buf::remaining`] first when parsing
/// untrusted input.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, {} remain",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads one signed byte (two's complement).
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian IEEE-754 `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads a little-endian IEEE-754 `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "cannot advance {cnt} bytes past end of buffer ({} remain)",
            self.len()
        );
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn put_and_read_back() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u8(1);
        buf.put_slice(&[2, 3]);
        assert_eq!(buf.len(), 3);
        assert_eq!(&buf[..], &[1, 2, 3]);
        assert_eq!(buf.to_vec(), vec![1, 2, 3]);
        assert!(!buf.is_empty());
        assert_eq!(buf.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f32_le(-1.5);
        buf.put_f64_le(2.75);
        buf.put_i8(-7);
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.get_f32_le(), -1.5);
        assert_eq!(cursor.get_f64_le(), 2.75);
        assert_eq!(cursor.get_i8(), -7);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn vec_is_a_buf_mut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(9);
        assert_eq!(v, vec![9, 0, 0, 0]);
    }

    #[test]
    fn cursor_advances_in_place() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.get_u8(), 1);
        assert_eq!(cursor.remaining(), 3);
        cursor.advance(2);
        assert_eq!(cursor.chunk(), &[4]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics_like_upstream() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u32_le();
    }
}
