//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and metric types
//! but never invokes a serializer (there is no `serde_json` in the build
//! environment). These derive macros therefore only need to *resolve*; they
//! expand to nothing, and the marker traits in the sibling `serde` stub carry
//! no methods that would require generated impls.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
