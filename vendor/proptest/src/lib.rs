//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]
//! macros. Each test runs a fixed number of seeded random cases; the failing
//! case's seed is printed so it can be replayed deterministically. Shrinking
//! is not implemented.

#![forbid(unsafe_code)]

/// Deterministic case generation plumbing.
pub mod test_runner {
    /// Number of random cases each property runs.
    pub const CASES: u64 = 64;

    /// SplitMix64-based generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for one test case.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Stable per-test base seed derived from the test name.
    pub fn base_seed(name: &str) -> u64 {
        // FNV-1a.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((S0.0, S1.1), (S0.0, S1.1, S2.2), (S0.0, S1.1, S2.2, S3.3));
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of a fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `len` elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines `#[test]` functions that run their body over many random cases.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let base = $crate::test_runner::base_seed(stringify!($name));
                for case in 0..$crate::test_runner::CASES {
                    let seed = base.wrapping_add(case);
                    let mut rng = $crate::test_runner::TestRng::new(seed);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )*
                    let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed at case {} (seed {:#x}): {}",
                            stringify!($name), case, seed, message
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current random case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Skips the current random case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1usize..=8, y in -4i32..4, f in 0.0f32..1.0) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn flat_map_len_matches(v in (1usize..=16).prop_flat_map(|n| crate::collection::vec(0.0f32..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() <= 16);
        }

        #[test]
        fn map_applies(n in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert_eq!(n % 10, 0);
            prop_assume!(n > 0);
        }
    }
}
