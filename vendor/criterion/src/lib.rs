//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — on top of
//! [`std::time::Instant`].
//!
//! Behavior matches criterion's cargo integration:
//!
//! - `cargo bench` passes `--bench` to the binary, which triggers full
//!   measurement (warm-up, then `sample_size` timed samples) and writes a
//!   `BENCH_<target>.json` baseline into the working directory.
//! - `cargo test` (no `--bench` argument) runs every closure once as a smoke
//!   test so benchmarks stay compile- and panic-checked in tier-1 CI.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering (best-effort without intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct Sample {
    /// `group/function/parameter` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest observed sample, ns per iteration.
    pub max_ns: f64,
    /// Number of timed samples taken.
    pub samples: usize,
}

/// One recorded scalar metric — a measured quantity that is not a timing
/// (a shed rate, a percentile, a throughput figure). Written alongside the
/// timing samples in the JSON baseline.
#[derive(Debug, Clone)]
pub struct Metric {
    /// `group/name` identifier.
    pub id: String,
    /// The measured value, in whatever unit the id implies.
    pub value: f64,
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new<N: Into<String>, P: std::fmt::Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id with no parameter component.
    pub fn from_name<N: Into<String>>(name: N) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: None,
        }
    }

    fn render(&self, group: &str) -> String {
        match &self.parameter {
            Some(p) => format!("{group}/{}/{p}", self.name),
            None => format!("{group}/{}", self.name),
        }
    }
}

/// Conversion accepted by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_name(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_name(self)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    sample_size: usize,
    result: &'a mut Option<(f64, f64, f64, usize)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure for real.
    Measure,
    /// `cargo test`: run each closure once.
    Smoke,
}

impl Bencher<'_> {
    /// Calls `routine` repeatedly and records wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
                *self.result = Some((0.0, 0.0, 0.0, 0));
            }
            Mode::Measure => {
                // Warm-up: run until ~50ms or 3 iterations, whichever is later,
                // and estimate the per-iteration cost.
                let warm_start = Instant::now();
                let mut warm_iters = 0u64;
                while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(50) {
                    black_box(routine());
                    warm_iters += 1;
                    if warm_iters >= 1_000_000 {
                        break;
                    }
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
                // Budget ~600ms across `sample_size` samples.
                let budget = 0.6f64;
                let iters_per_sample = ((budget / self.sample_size as f64 / per_iter.max(1e-9))
                    .round() as u64)
                    .clamp(1, 10_000_000);
                let mut min_ns = f64::INFINITY;
                let mut max_ns = 0.0f64;
                let mut total_ns = 0.0f64;
                for _ in 0..self.sample_size {
                    let t0 = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    let ns = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
                    min_ns = min_ns.min(ns);
                    max_ns = max_ns.max(ns);
                    total_ns += ns;
                }
                *self.result = Some((
                    total_ns / self.sample_size as f64,
                    min_ns,
                    max_ns,
                    self.sample_size,
                ));
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, id: String, mut f: F) {
        let mut result = None;
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            result: &mut result,
        };
        f(&mut bencher);
        if let Some((mean_ns, min_ns, max_ns, samples)) = result {
            if self.criterion.mode == Mode::Measure {
                println!(
                    "{id:<56} time: [{} .. {} .. {}]",
                    fmt_ns(min_ns),
                    fmt_ns(mean_ns),
                    fmt_ns(max_ns)
                );
                self.criterion.results.push(Sample {
                    id,
                    mean_ns,
                    min_ns,
                    max_ns,
                    samples,
                });
            }
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let rendered = id.into_benchmark_id().render(&self.name);
        self.run(rendered, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let rendered = id.render(&self.name);
        self.run(rendered, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; results are recorded
    /// incrementally).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
    results: Vec<Sample>,
    metrics: Vec<Metric>,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if bench_mode {
                Mode::Measure
            } else {
                Mode::Smoke
            },
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        let mut f = f;
        group.run(name.to_string(), &mut f);
        self
    }

    /// Recorded results (bench mode only).
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// True under `cargo bench` (`--bench` passed): closures are measured
    /// for real. False under `cargo test` smoke runs, where benches should
    /// shrink their workloads to a panic-check.
    pub fn measuring(&self) -> bool {
        self.mode == Mode::Measure
    }

    /// Records a named scalar into the JSON baseline's `metrics` section
    /// (bench mode only; a no-op in smoke runs). Non-finite values are
    /// clamped to 0 so the baseline stays valid JSON.
    pub fn record_metric(&mut self, id: impl Into<String>, value: f64) {
        if self.mode != Mode::Measure {
            return;
        }
        let value = if value.is_finite() { value } else { 0.0 };
        let metric = Metric {
            id: id.into(),
            value,
        };
        println!("{:<56} metric: {value:.6}", metric.id);
        self.metrics.push(metric);
    }

    /// Recorded scalar metrics (bench mode only).
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Writes the recorded samples as a JSON baseline. Called by
    /// `criterion_main!` with `BENCH_<target>.json`; no-op in smoke mode or
    /// when nothing was recorded.
    pub fn write_json_baseline(&self, path: &str) {
        if self.mode != Mode::Measure || (self.results.is_empty() && self.metrics.is_empty()) {
            return;
        }
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{comma}",
                s.id.replace('"', "'"),
                s.mean_ns,
                s.min_ns,
                s.max_ns,
                s.samples
            );
        }
        json.push_str("  ]");
        if !self.metrics.is_empty() {
            json.push_str(",\n  \"metrics\": [\n");
            for (i, m) in self.metrics.iter().enumerate() {
                let comma = if i + 1 == self.metrics.len() { "" } else { "," };
                let _ = writeln!(
                    json,
                    "    {{\"id\": \"{}\", \"value\": {:.6}}}{comma}",
                    m.id.replace('"', "'"),
                    m.value
                );
            }
            json.push_str("  ]");
        }
        json.push_str("\n}\n");
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote baseline {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Returns `BENCH_<target>.json` derived from the executable name, stripping
/// the cargo hash suffix.
pub fn default_baseline_path() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    // cargo names bench binaries `<target>-<16-hex-hash>`.
    let name = match stem.rsplit_once('-') {
        Some((base, suffix))
            if suffix.len() == 16 && suffix.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base
        }
        _ => stem,
    };
    let name = name.strip_prefix("bench_").unwrap_or(name);
    format!("BENCH_{name}.json")
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.write_json_baseline(&$crate::default_baseline_path());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_closure_once() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            results: Vec::new(),
            metrics: Vec::new(),
        };
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1);
        assert!(c.results().is_empty());
    }

    #[test]
    fn measure_mode_records_sample() {
        let mut c = Criterion {
            mode: Mode::Measure,
            results: Vec::new(),
            metrics: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
        }
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].id, "g/mul/3");
        assert!(c.results()[0].mean_ns >= 0.0);
    }

    #[test]
    fn metrics_record_in_measure_mode_only() {
        let mut smoke = Criterion {
            mode: Mode::Smoke,
            results: Vec::new(),
            metrics: Vec::new(),
        };
        smoke.record_metric("g/shed_rate", 0.5);
        assert!(smoke.metrics().is_empty());
        assert!(!smoke.measuring());

        let mut measure = Criterion {
            mode: Mode::Measure,
            results: Vec::new(),
            metrics: Vec::new(),
        };
        measure.record_metric("g/shed_rate", 0.5);
        measure.record_metric("g/bad", f64::NAN);
        assert!(measure.measuring());
        assert_eq!(measure.metrics().len(), 2);
        assert_eq!(measure.metrics()[0].value, 0.5);
        assert_eq!(measure.metrics()[1].value, 0.0, "NaN clamps to 0");
    }

    #[test]
    fn benchmark_id_renders_with_and_without_parameter() {
        assert_eq!(BenchmarkId::new("f", 7).render("g"), "g/f/7");
        assert_eq!(BenchmarkId::from_name("f").render("g"), "g/f");
    }
}
