//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`scope`] is provided (the single API the workspace uses, for
//! row-panel sharded GEMM workers). It is a thin wrapper over
//! [`std::thread::scope`], which has subsumed crossbeam's scoped threads
//! since Rust 1.63.
//!
//! Behavioral difference from upstream: a panicking worker makes the scope
//! itself panic (std semantics) instead of being returned as `Err`, so the
//! `Result` returned here is always `Ok`. Workspace call sites only `expect`
//! the result, which is compatible with both behaviors.

#![forbid(unsafe_code)]

/// A scope handle for spawning workers that may borrow from the caller.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker thread. The closure receives a scope handle so nested
    /// spawns are possible, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-data worker threads can be
/// spawned; all workers are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::scope;

    #[test]
    fn workers_share_borrowed_slices() {
        let mut out = vec![0u32; 8];
        let input = [1u32, 2, 3, 4, 5, 6, 7, 8];
        scope(|s| {
            for (o, i) in out.chunks_mut(4).zip(input.chunks(4)) {
                s.spawn(move |_| {
                    for (dst, src) in o.iter_mut().zip(i) {
                        *dst = src * 10;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn nested_spawn_compiles() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
