//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits together with no-op
//! derive macros so that `#[derive(Serialize, Deserialize)]` in the workspace
//! compiles without network access to crates.io. No serializer backend exists
//! in this environment, so the traits intentionally carry no methods.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
