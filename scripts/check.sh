#!/usr/bin/env bash
# Lint + format + tier-1 verify gate for the FF-INT8 workspace.
#
# Usage:
#   scripts/check.sh          # fmt --check, clippy -D warnings, doc -D warnings,
#                             # release build, tests (incl. doc-tests)
#   scripts/check.sh --fast   # skip the release build (lints + debug tests only)
#
# This wraps the tier-1 verify flow from ROADMAP.md (`cargo build --release &&
# cargo test -q`) with the static gates so CI and local runs agree.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [[ "$fast" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --doc"
cargo test -q --doc

if [[ "$fast" -eq 0 ]]; then
    # Serve smoke gate: tiny FF-INT8 model → freeze → save/load → 100
    # concurrent requests through the micro-batcher → accuracy parity with
    # direct in-memory inference asserted (crates/serve/tests/smoke.rs).
    echo "==> serve smoke gate (release)"
    cargo test -q --release -p ff-serve --test smoke

    # Interrupt-resume smoke gate: train 2 epochs → FF8C checkpoint →
    # resume 1 epoch → history and weights bit-identical to 3 straight
    # epochs (crates/core/tests/checkpoint.rs).
    echo "==> interrupt-resume smoke gate (release)"
    cargo test -q --release -p ff-core --test checkpoint interrupt_resume_smoke_gate

    # Network smoke gate: spawn the FF8P TCP server on an ephemeral port →
    # N concurrent client predicts (single + pipelined) → clean shutdown →
    # served predictions bit-identical to in-process frozen inference, so
    # accuracy parity is exact (crates/net/tests/smoke.rs).
    echo "==> network smoke gate (release)"
    cargo test -q --release -p ff-net --test smoke

    # Chaos smoke gate: seeded fault plans (short reads/writes, stalls,
    # mid-frame resets, corruption, raw garbage) against a live server
    # under a watchdog — zero hangs, zero leaked pool slots, typed errors
    # only, and every answer bit-identical to a direct model call
    # (crates/net/tests/chaos.rs).
    echo "==> chaos smoke gate (release)"
    cargo test -q --release -p ff-net --test chaos

    # Multi-model smoke gate: train two models → serve both from one port
    # behind the registry → per-model bit-exact parity vs direct calls →
    # hot-swap one entry from a rotated FF8C checkpoint during live
    # traffic → auth failures (missing/wrong/out-of-scope token) return
    # typed Unauthorized, unknown ids return UnknownModel
    # (crates/net/tests/multimodel.rs).
    echo "==> multi-model smoke gate (release)"
    cargo test -q --release -p ff-net --test multimodel

    # Distributed-training smoke gate: a 2-worker loopback FF8D cluster
    # trains, checkpoints mid-epoch, survives a worker death (deterministic
    # fault injection), resumes — and every run's weights are asserted
    # bit-identical to the single-process sequential trainer; pipeline
    # parallelism likewise, across stage splits and precisions, with FF8C
    # checkpoints interchangeable in both directions
    # (crates/dist/tests/parity.rs).
    echo "==> distributed-training smoke gate (release)"
    cargo test -q --release -p ff-dist --test parity

    # Trace smoke gate: serve under concurrent load → TraceDump/MetricsDump
    # over the wire → every sampled trace is complete with monotonic stage
    # stamps whose reply-written offset lands at the end-to-end latency, and
    # the per-stage histograms in StatsReply account for every request
    # (crates/net/tests/trace.rs).
    echo "==> trace smoke gate (release)"
    cargo test -q --release -p ff-net --test trace

    # Cluster-trace smoke gate: a capture-all 2-worker FF8D run must yield
    # one wire-dumpable ClusterSpan per training step with every coordinator
    # phase and worker stamp present and monotonic, per-kind wire accounting
    # that adds up against the protocol's known frame counts, v1↔v2 interop
    # that stays bit-exact, and populated pipeline stage histograms
    # (crates/dist/tests/cluster_trace.rs).
    echo "==> cluster-trace smoke gate (release)"
    cargo test -q --release -p ff-dist --test cluster_trace
fi

echo "All checks passed."
