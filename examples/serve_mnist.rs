//! End-to-end serving walkthrough: train an FF-INT8 MLP on the synthetic
//! MNIST stand-in, freeze it to a binary artifact, reload it, and serve
//! concurrent traffic through the micro-batching engine.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serve_mnist
//! ```

use ff_int8::core::{FfTrainer, Precision, TrainOptions};
use ff_int8::data::{synthetic_mnist, SyntheticConfig};
use ff_int8::metrics::accuracy;
use ff_int8::models::small_mlp;
use ff_int8::serve::{
    load_bytes, save_bytes, BatchPolicy, FrozenModel, ServeConfig, ServeMode, Server,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a small MLP with FF-INT8 + look-ahead.
    println!("== training FF-INT8 MLP on synthetic MNIST ==");
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 600,
        test_size: 200,
        noise_std: 0.15,
        max_shift: 0,
        seed: 3,
    });
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = small_mlp(784, &[128], 10, &mut rng);
    let mut trainer = FfTrainer::new(
        Precision::Int8,
        true,
        TrainOptions {
            epochs: 8,
            learning_rate: 0.2,
            max_eval_samples: 200,
            ..TrainOptions::default()
        },
    );
    let history = trainer.train(&mut net, &train_set, &test_set)?;
    println!(
        "trained: final test accuracy {:.1}%",
        history.final_accuracy().unwrap_or(0.0) * 100.0
    );

    // 2. Freeze to an immutable INT8 artifact and round-trip it.
    let frozen = FrozenModel::freeze(&net, 10)?;
    let artifact = save_bytes(&frozen);
    println!(
        "frozen: {} layers, {} artifact bytes, {} packed-panel bytes",
        frozen.layers().len(),
        artifact.len(),
        frozen.packed_bytes()
    );
    let model = load_bytes(&artifact)?;

    // 3. Serve concurrent traffic with the FF-native goodness sweep.
    let server = Server::start(
        model,
        ServeConfig {
            workers: 2,
            mode: ServeMode::Goodness,
            policy: BatchPolicy {
                max_batch: 16,
                max_wait: Duration::from_micros(500),
            },
            gemm_threads: 1,
            trace: ff_int8::serve::TraceSettings::default(),
        },
    )?;
    let subset = test_set.take(200)?;
    server.warmup(subset.iter_batches(32).take(1))?;

    let x = subset.flattened()?;
    let mut predictions = vec![0usize; subset.len()];
    std::thread::scope(|scope| {
        let chunk = subset.len() / 4;
        for (client, slots) in predictions.chunks_mut(chunk).enumerate() {
            let handle = server.handle();
            let x = &x;
            scope.spawn(move || {
                for (offset, slot) in slots.iter_mut().enumerate() {
                    *slot = handle
                        .predict(x.row(client * chunk + offset))
                        .expect("prediction")
                        .label;
                }
            });
        }
    });

    let served_accuracy = accuracy(&predictions, subset.labels());
    let stats = server.stats();
    println!(
        "served {} requests in {} batches (mean batch {:.1}, largest {})",
        stats.requests, stats.batches, stats.mean_batch, stats.max_batch
    );
    println!("latency: {}", stats.latency);
    println!("served accuracy: {:.1}%", served_accuracy * 100.0);
    server.shutdown();
    Ok(())
}
