//! Network-serving walkthrough: train an FF-INT8 MLP, freeze it, expose it
//! over TCP with the `FF8P` wire protocol, and drive it with concurrent
//! clients — single predictions, pipelined waves and one-frame batches —
//! before shutting the server down over the wire.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serve_tcp
//! ```

use ff_int8::core::{FfTrainer, Precision, TrainOptions};
use ff_int8::data::{synthetic_mnist, SyntheticConfig};
use ff_int8::metrics::accuracy;
use ff_int8::models::small_mlp;
use ff_int8::net::{AdmissionConfig, Client, ClientConfig, NetConfig, NetServer, RetryPolicy};
use ff_int8::serve::{BatchPolicy, FrozenModel, ServeConfig, ServeMode};
use ff_int8::trace::MetricsExporter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Read;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a small MLP with FF-INT8 + look-ahead.
    println!("== training FF-INT8 MLP on synthetic MNIST ==");
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 600,
        test_size: 200,
        noise_std: 0.15,
        max_shift: 0,
        seed: 3,
    });
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = small_mlp(784, &[128], 10, &mut rng);
    let mut trainer = FfTrainer::new(
        Precision::Int8,
        true,
        TrainOptions {
            epochs: 6,
            learning_rate: 0.2,
            max_eval_samples: 200,
            ..TrainOptions::default()
        },
    );
    let history = trainer.train(&mut net, &train_set, &test_set)?;
    println!(
        "trained: final test accuracy {:.1}%",
        history.final_accuracy().unwrap_or(0.0) * 100.0
    );

    // 2. Freeze and bind the TCP front-end on an ephemeral loopback port.
    //    (A real deployment passes "0.0.0.0:7878" and runs clients on
    //    other machines — the protocol is the same.)
    let frozen = FrozenModel::freeze(&net, 10)?;
    let server = NetServer::bind(
        frozen,
        "127.0.0.1:0",
        NetConfig {
            conn_threads: 4,
            read_timeout: Duration::from_millis(250),
            // Bound in-flight work: beyond this many rows the server sheds
            // with a typed `Overloaded` reply + retry hint instead of
            // letting the batch queue grow without limit.
            admission: AdmissionConfig {
                max_in_flight_rows: 2048,
                retry_after: Duration::from_millis(10),
                ..AdmissionConfig::default()
            },
            serve: ServeConfig {
                workers: 2,
                mode: ServeMode::Goodness,
                policy: BatchPolicy {
                    max_batch: 16,
                    max_wait: Duration::from_micros(500),
                },
                gemm_threads: 1,
                trace: ff_int8::serve::TraceSettings::default(),
            },
            ..NetConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("== serving FF8P on {addr} ==");

    // Alongside the binary protocol, expose the server's whole metrics
    // registry on a second plaintext port — `nc host port` (or any poller)
    // gets one live snapshot per connection, no FF8P client required.
    let mut exporter = MetricsExporter::bind("127.0.0.1:0", server.handle().metrics())?;
    println!("== metrics exposition on {} ==", exporter.addr());

    // 3. A client probes the server, then four concurrent clients classify
    //    the test set over the wire.
    // The probe opts into resilience: a 250 ms budget per request (carried
    // on the wire, shed server-side once expired) and seeded jittered
    // retries for transient failures — reruns reproduce the same schedule.
    let mut probe = Client::connect_with(
        addr,
        ClientConfig {
            deadline: Some(Duration::from_millis(250)),
            retry: RetryPolicy::standard(7),
            ..ClientConfig::default()
        },
    )?;
    let info = probe.health()?;
    println!(
        "health: {} features, {} classes, {:?} mode, {:?} state",
        info.input_features, info.num_classes, info.mode, info.state
    );

    let subset = test_set.take(200)?;
    let x = subset.flattened()?;
    let mut predictions = vec![0usize; subset.len()];
    std::thread::scope(|scope| {
        let chunk = subset.len() / 4;
        for (client_index, slots) in predictions.chunks_mut(chunk).enumerate() {
            let x = &x;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let base = client_index * chunk;
                // A third each: single predicts, a pipelined wave, one
                // batch frame — all three produce bit-identical answers.
                let third = chunk / 3;
                for (offset, slot) in slots.iter_mut().enumerate().take(third) {
                    *slot = client.predict(x.row(base + offset)).expect("predict");
                }
                let wave = client
                    .predict_pipelined((third..2 * third).map(|o| x.row(base + o)))
                    .expect("pipelined");
                slots[third..2 * third].copy_from_slice(&wave);
                let flat: Vec<f32> = (2 * third..chunk)
                    .flat_map(|o| x.row(base + o).to_vec())
                    .collect();
                let batched = client.predict_batch(x.cols(), &flat).expect("batch");
                slots[2 * third..].copy_from_slice(&batched);
                client.close();
            });
        }
    });

    let served_accuracy = accuracy(&predictions, subset.labels());
    let stats = probe.stats()?;
    println!(
        "served {} rows in {} GEMM batches (mean batch {:.1}, largest {})",
        stats.requests, stats.batches, stats.mean_batch, stats.max_batch
    );
    println!("queue-to-reply latency: {}", stats.latency);
    println!(
        "load shedding: {} expired in queue, {} refused overloaded, {} refused expired",
        stats.shed_expired, stats.rejected_overload, stats.rejected_deadline
    );
    println!("served accuracy over TCP: {:.1}%", served_accuracy * 100.0);

    // 4. Scrape the plaintext metrics port the way a fleet poller would.
    let mut scrape = String::new();
    std::net::TcpStream::connect(exporter.addr())?.read_to_string(&mut scrape)?;
    println!(
        "metrics scrape: {} lines, e.g. {}",
        scrape.lines().count(),
        scrape
            .lines()
            .find(|l| l.starts_with("serve.requests"))
            .unwrap_or("<serve.requests missing>")
    );
    exporter.shutdown();

    // 5. Shut the server down over the wire.
    probe.shutdown_server()?;
    server.shutdown();
    println!("server drained and shut down");
    Ok(())
}
