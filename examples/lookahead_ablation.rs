//! Look-ahead ablation: train the same MLP with FF-INT8 with and without the
//! look-ahead scheme and compare convergence speed and final accuracy
//! (the paper's Fig. 6a comparison).
//!
//! Run with: `cargo run --release --example lookahead_ablation`

use ff_int8::core::{Algorithm, TrainOptions, TrainSession};
use ff_int8::data::{synthetic_mnist, SyntheticConfig};
use ff_int8::metrics::format_series;
use ff_int8::models::small_mlp;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 1200,
        test_size: 300,
        noise_std: 0.35,
        max_shift: 2,
        seed: 4,
    });
    let options = TrainOptions {
        epochs: 20,
        learning_rate: 0.2,
        max_eval_samples: 200,
        lambda_step: 0.002,
        ..TrainOptions::default()
    };

    for lookahead in [false, true] {
        let algorithm = Algorithm::FfInt8 { lookahead };
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut net = small_mlp(784, &[96, 96], 10, &mut rng);
        let history =
            TrainSession::new(&mut net, &train_set, &test_set, algorithm, &options)?.run()?;
        println!("== {algorithm} ==");
        println!(
            "{}",
            format_series("epoch", "test accuracy", &history.test_accuracy_series())
        );
        let best = history.best_test_accuracy().unwrap_or(0.0);
        println!(
            "best accuracy {:.3}; epochs to reach 90% of best: {:?}; wall-clock {:.1}s\n",
            best,
            history.epochs_to_reach(0.9 * best),
            history.total_seconds()
        );
    }
    Ok(())
}
