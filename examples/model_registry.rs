//! Multi-model serving walkthrough: train two FF-INT8 models, serve both
//! from one port behind a [`ModelRegistry`], gate access with per-model
//! auth tokens, then hot-swap the candidate model from rotating `FF8C`
//! checkpoints — live, with zero downtime — using the training session's
//! `on_checkpoint` hook.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example model_registry
//! ```

use ff_int8::core::{Algorithm, AutoCheckpoint, Checkpoint, TrainOptions, TrainSession};
use ff_int8::data::{synthetic_mnist, SyntheticConfig};
use ff_int8::models::small_mlp;
use ff_int8::net::{AuthPolicy, AuthToken, Client, ClientConfig, NetConfig, NetServer};
use ff_int8::serve::{FrozenModel, ModelRegistry, ServeConfig, ServeMode, DEFAULT_MODEL_ID};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CANDIDATE_ID: u16 = 1;
const ADMIN_TOKEN: &str = "ops-admin";
const TENANT_TOKEN: &str = "tenant-key";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the stable production model and freeze it.
    println!("== training the production model ==");
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 600,
        test_size: 200,
        noise_std: 0.15,
        max_shift: 0,
        seed: 3,
    });
    let mut rng = StdRng::seed_from_u64(1);
    let mut stable = small_mlp(784, &[64], 10, &mut rng);
    let session = TrainSession::new(
        &mut stable,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &TrainOptions {
            epochs: 2,
            learning_rate: 0.2,
            max_eval_samples: 200,
            ..TrainOptions::default()
        },
    )?;
    session.run()?;
    let production = FrozenModel::freeze(&stable, 10)?;

    // 2. One registry, two entries: the production model is the default
    //    (served to v1/v2 clients and any v3 client that does not pick a
    //    model), and a fresh candidate starts from random weights.
    let mut rng = StdRng::seed_from_u64(2);
    let mut candidate_net = small_mlp(784, &[64], 10, &mut rng);
    let registry = ModelRegistry::new(production);
    registry.register(
        CANDIDATE_ID,
        "candidate",
        FrozenModel::freeze(&candidate_net, 10)?,
    )?;

    // 3. Serve both behind one port. The admin token reaches every model
    //    (and may shut the server down); the tenant token is scoped to the
    //    candidate only.
    let server = NetServer::bind_registry(
        registry.clone(),
        "127.0.0.1:0",
        NetConfig {
            auth: AuthPolicy::with_tokens(vec![
                AuthToken::new(ADMIN_TOKEN),
                AuthToken::for_models(TENANT_TOKEN, &[CANDIDATE_ID]),
            ]),
            serve: ServeConfig {
                workers: 2,
                mode: ServeMode::Logits,
                ..ServeConfig::default()
            },
            ..NetConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("== serving {} models on {addr} ==", registry.len());

    // 4. While the candidate trains, every rotated checkpoint hot-swaps
    //    straight into the serving registry: the epoch pointer flips
    //    atomically, in-flight waves finish on the epoch they started on,
    //    and clients never see a torn model or a dropped request.
    let swap_registry = registry.clone();
    let mut rng = StdRng::seed_from_u64(4);
    let mut scratch = small_mlp(784, &[64], 10, &mut rng);
    let dir = std::env::temp_dir().join("ff8_model_registry_example");
    std::fs::remove_dir_all(&dir).ok();
    let mut session = TrainSession::new(
        &mut candidate_net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &TrainOptions {
            epochs: 2,
            learning_rate: 0.2,
            max_eval_samples: 200,
            ..TrainOptions::default()
        },
    )?;
    session.auto_checkpoint(AutoCheckpoint::new(&dir, 10, 2))?;
    session.on_checkpoint(move |path| {
        let checkpoint = Checkpoint::load(path).expect("rotated artifact is live");
        let version = swap_registry
            .swap_from_checkpoint(CANDIDATE_ID, &checkpoint, &mut scratch, 10)
            .expect("same-shape checkpoint swaps in");
        println!(
            "  hot-swapped candidate -> version {version} (step {})",
            checkpoint.global_step
        );
    });

    let mut tenant = Client::connect_with(
        addr,
        ClientConfig {
            model: CANDIDATE_ID,
            token: Some(TENANT_TOKEN.to_string()),
            ..ClientConfig::default()
        },
    )?;
    let x = test_set.flattened()?;
    use ff_int8::core::SessionStatus;
    while !matches!(
        session.step()?,
        SessionStatus::Finished | SessionStatus::Stopped
    ) {
        // Live traffic against the model under training — each reply comes
        // from whichever epoch was current when its wave formed.
        tenant.predict(x.row(0))?;
    }
    drop(session);
    let info = tenant.health()?;
    println!(
        "candidate now at version {} after {} requests",
        info.model_version,
        tenant.stats()?.requests
    );

    // 5. The tenant token does not reach the default model...
    let mut trespasser = Client::connect_with(
        addr,
        ClientConfig {
            model: DEFAULT_MODEL_ID,
            token: Some(TENANT_TOKEN.to_string()),
            ..ClientConfig::default()
        },
    )?;
    println!(
        "tenant on default model: {}",
        trespasser.predict(x.row(0)).unwrap_err()
    );

    // ...and shutting down takes the admin credential.
    let mut admin = Client::connect_with(
        addr,
        ClientConfig {
            token: Some(ADMIN_TOKEN.to_string()),
            ..ClientConfig::default()
        },
    )?;
    admin.shutdown_server()?;
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("server drained and shut down");
    Ok(())
}
