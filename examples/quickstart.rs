//! Quickstart: train a 2-hidden-layer MLP with FF-INT8 (look-ahead enabled)
//! on the synthetic MNIST stand-in and print the learning curve.
//!
//! Run with: `cargo run --release --example quickstart`

use ff_int8::core::{train, Algorithm, TrainOptions};
use ff_int8::data::{synthetic_mnist, SyntheticConfig};
use ff_int8::models::small_mlp;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: a 10-class 28×28 synthetic stand-in for MNIST.
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 1500,
        test_size: 400,
        noise_std: 0.3,
        max_shift: 1,
        seed: 1,
    });

    // 2. Model: an MLP whose hidden layers are the Forward-Forward units.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut net = small_mlp(784, &[128, 128], 10, &mut rng);

    // 3. Train with the paper's method: INT8 Forward-Forward + look-ahead.
    let options = TrainOptions {
        epochs: 15,
        learning_rate: 0.2,
        max_eval_samples: 300,
        ..TrainOptions::default()
    };
    let history = train(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &options,
    )?;

    println!("epoch  train-loss  test-accuracy");
    for record in history.records() {
        println!(
            "{:>5}  {:>10.4}  {:>12.3}",
            record.epoch,
            record.train_loss,
            record.test_accuracy.unwrap_or(f32::NAN)
        );
    }
    println!(
        "\nFinal FF-INT8 accuracy: {:.1}%",
        history.final_accuracy().unwrap_or(0.0) * 100.0
    );
    Ok(())
}
