//! Quickstart: train a 2-hidden-layer MLP with FF-INT8 (look-ahead enabled)
//! on the synthetic MNIST stand-in, watching the run live through the
//! step-driven `TrainSession` API.
//!
//! Run with: `cargo run --release --example quickstart`

use ff_int8::core::{Algorithm, SessionControl, TrainEvent, TrainOptions, TrainSession};
use ff_int8::data::{synthetic_mnist, SyntheticConfig};
use ff_int8::models::small_mlp;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: a 10-class 28×28 synthetic stand-in for MNIST.
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 1500,
        test_size: 400,
        noise_std: 0.3,
        max_shift: 1,
        seed: 1,
    });

    // 2. Model: an MLP whose hidden layers are the Forward-Forward units.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut net = small_mlp(784, &[128, 128], 10, &mut rng);

    // 3. Train with the paper's method: INT8 Forward-Forward + look-ahead.
    //    A `TrainSession` exposes the run as it happens — the observer below
    //    prints each epoch live and stops early once accuracy is good
    //    enough, instead of blocking until every epoch is done.
    let options = TrainOptions {
        epochs: 15,
        learning_rate: 0.2,
        max_eval_samples: 300,
        ..TrainOptions::default()
    };
    let mut session = TrainSession::new(
        &mut net,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: true },
        &options,
    )?;
    println!("epoch  train-loss  test-accuracy  seconds");
    session.on_event(|event| match event {
        TrainEvent::EpochEnd {
            epoch,
            mean_loss,
            test_accuracy,
            seconds,
            ..
        } => {
            println!(
                "{epoch:>5}  {mean_loss:>10.4}  {:>13.3}  {seconds:>7.2}",
                test_accuracy.unwrap_or(f32::NAN)
            );
            // Early stopping: no point finishing all 15 epochs once the
            // synthetic task is solved.
            if test_accuracy.is_some_and(|acc| acc > 0.97) {
                println!("(early stop: accuracy target reached)");
                SessionControl::Stop
            } else {
                SessionControl::Continue
            }
        }
        _ => SessionControl::Continue,
    });
    let history = session.run()?;

    println!(
        "\nFinal FF-INT8 accuracy: {:.1}% after {:.1}s of training",
        history.final_accuracy().unwrap_or(0.0) * 100.0,
        history.total_seconds()
    );
    Ok(())
}
