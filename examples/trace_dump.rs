//! Observability walkthrough: serve a frozen FF-INT8 model over TCP, put
//! it under pipelined load, then query the two wire-level observability
//! surfaces added by `ff-trace` —
//!
//! - `MetricsDump`: the server's whole metrics registry in its sorted text
//!   exposition format, and
//! - `TraceDump`: recent per-request traces from the bounded flight
//!   recorder, each stamped at recv / admit / enqueue / wave-start /
//!   gemm-done / reply-written —
//!
//! and print a per-stage latency breakdown (queue wait, batch assembly,
//! GEMM, reply write) from the `StatsReply` stage histograms.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_dump
//! ```

use ff_int8::metrics::format_table;
use ff_int8::models::small_mlp;
use ff_int8::net::{Client, NetConfig, NetServer};
use ff_int8::serve::{BatchPolicy, FrozenModel, ServeConfig, ServeMode, Stage, TraceSettings};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Freeze a small random model and serve it with tracing on:
    //    every request is sampled (`sample_per_sec: u32::MAX` admits them
    //    deterministically) and anything over 5 ms end-to-end is retained
    //    as a flagged slow request even when sampling would have skipped it.
    let mut rng = StdRng::seed_from_u64(7);
    let frozen = FrozenModel::freeze(&small_mlp(32, &[24], 4, &mut rng), 4)?;
    let server = NetServer::bind(
        frozen,
        "127.0.0.1:0",
        NetConfig {
            serve: ServeConfig {
                workers: 2,
                mode: ServeMode::Goodness,
                policy: BatchPolicy {
                    max_batch: 16,
                    max_wait: Duration::from_micros(300),
                },
                trace: TraceSettings {
                    capacity: 128,
                    sample_per_sec: u32::MAX,
                    slow_threshold: Some(Duration::from_millis(5)),
                    ..TraceSettings::default()
                },
                ..ServeConfig::default()
            },
            ..NetConfig::default()
        },
    )?;
    let addr = server.local_addr();

    // 2. Load: a few hundred predictions across two connections so rows
    //    coalesce into shared GEMM batches.
    let mut workers = Vec::new();
    for seed in 0..2u64 {
        workers.push(std::thread::spawn(move || -> Result<(), String> {
            let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
            let features = [0.25f32; 32];
            for _ in 0..150 {
                client.predict(&features).map_err(|e| e.to_string())?;
            }
            let _ = seed;
            client.close();
            Ok(())
        }));
    }
    for worker in workers {
        worker.join().expect("load worker panicked")?;
    }

    let mut client = Client::connect(addr)?;

    // 3. Per-stage latency breakdown, folded into the ordinary StatsReply.
    let stats = client.stats()?;
    println!("== per-stage latency (from StatsReply) ==");
    let rows: Vec<Vec<String>> = stats
        .stages
        .named()
        .iter()
        .map(|(name, stage)| {
            vec![
                (*name).to_string(),
                stage.count.to_string(),
                format!("{:?}", stage.mean),
                format!("{:?}", stage.p50),
                format!("{:?}", stage.p95),
                format!("{:?}", stage.p99),
                format!("{:?}", stage.max),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["stage", "count", "mean", "p50", "p95", "p99", "max"],
            &rows
        )
    );

    // 4. The flight recorder: recent per-request traces, oldest first.
    let (dropped, traces) = client.trace_dump(8)?;
    println!(
        "== flight recorder: {} recent traces ({} dropped under contention) ==",
        traces.len(),
        dropped
    );
    for trace in &traces {
        let stamp = |stage: Stage| {
            trace
                .stamp(stage)
                .map_or_else(|| "-".to_string(), |ns| format!("{ns}"))
        };
        println!(
            "seq {:>4}  model {}  {}{}  e2e {:>9} ns  recv {} admit {} enqueue {} \
             wave {} gemm {} reply {}",
            trace.seq,
            trace.model_id,
            if trace.completed { "done" } else { "open" },
            if trace.slow { "/slow" } else { "" },
            trace.end_to_end_ns,
            stamp(Stage::Recv),
            stamp(Stage::Admit),
            stamp(Stage::Enqueue),
            stamp(Stage::WaveStart),
            stamp(Stage::GemmDone),
            stamp(Stage::ReplyWritten),
        );
    }

    // 5. The full metrics registry, one sorted line per metric.
    println!("== metrics registry (MetricsDump) ==");
    print!("{}", client.metrics_dump()?);

    client.close();
    server.shutdown();
    Ok(())
}
