//! Distributed-training walkthrough: train the paper's 3-layer FF-INT8 MLP
//! three ways — sequentially, layer-pipelined across threads, and
//! data-parallel over a loopback `FF8D` cluster — and verify all three
//! produce **bit-identical weights** from the same seed.
//!
//! The cluster demo runs a coordinator with two in-process TCP workers, a
//! raw-socket event subscriber, and a checkpoint publish/pull round trip —
//! the same moving parts a multi-host deployment would use, with
//! `127.0.0.1` standing in for the fleet network.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example train_cluster
//! ```

use ff_int8::core::checkpoint::{load_bytes, save_bytes};
use ff_int8::core::{Algorithm, Precision, SessionControl, TrainOptions, TrainSession};
use ff_int8::data::{synthetic_mnist, SyntheticConfig};
use ff_int8::dist::protocol::{read_msg, write_msg, TrainMsg};
use ff_int8::dist::{Coordinator, CoordinatorConfig, PipelineSession, Worker};
use ff_int8::models::small_mlp;
use ff_int8::nn::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const CLUSTER_TOKEN: &str = "demo-cluster-key";

/// Every run starts from the identical initialisation: same seed, same
/// architecture — the precondition for bit-exact comparison.
fn fresh_net() -> Sequential {
    let mut rng = StdRng::seed_from_u64(1);
    small_mlp(784, &[64, 64], 10, &mut rng)
}

fn options(grad_shards: usize) -> TrainOptions {
    TrainOptions {
        epochs: 2,
        batch_size: 32,
        max_eval_samples: 64,
        seed: 9,
        grad_shards,
        ..TrainOptions::fast_test()
    }
}

/// The exact bit pattern of every trained parameter — equality here is the
/// strongest possible parity claim, immune to "close enough" float drift.
fn weight_bits(net: &mut Sequential) -> Vec<Vec<u32>> {
    net.params_mut()
        .iter()
        .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 256,
        test_size: 64,
        noise_std: 0.2,
        max_shift: 0,
        seed: 23,
    });

    // 1. Sequential baselines — one per sharding config, because the shard
    //    count is part of the deterministic math (it fixes the reduction
    //    tree), so each distributed run is compared against the sequential
    //    run with the *same* options.
    println!("== sequential baselines ==");
    let mut baseline = fresh_net();
    let start = Instant::now();
    TrainSession::new(
        &mut baseline,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: false },
        &options(1),
    )?
    .run()?;
    let sequential_elapsed = start.elapsed();
    let pipeline_reference = weight_bits(&mut baseline);
    println!("sequential (grad_shards 1): {sequential_elapsed:?}");

    let mut baseline = fresh_net();
    TrainSession::new(
        &mut baseline,
        &train_set,
        &test_set,
        Algorithm::FfInt8 { lookahead: false },
        &options(2),
    )?
    .run()?;
    let cluster_reference = weight_bits(&mut baseline);

    // 2. Layer-pipeline parallelism: the first FF layer trains on one
    //    thread, the remaining two on another, quantized activations flow
    //    through a bounded channel between them. Forward-Forward has no
    //    backward pass across layers (λ = 0), so the pipelined trajectory
    //    is the sequential one, bit for bit.
    println!("== layer-pipeline parallel (stages [1, 2]) ==");
    let mut pipelined = fresh_net();
    let start = Instant::now();
    let mut session = PipelineSession::new(
        &mut pipelined,
        &train_set,
        &test_set,
        Precision::Int8,
        &options(1),
        &[1, 2],
    )?;
    session.run()?;
    drop(session);
    let pipeline_elapsed = start.elapsed();
    assert_eq!(
        weight_bits(&mut pipelined),
        pipeline_reference,
        "pipeline must be bit-exact vs sequential"
    );
    println!(
        "pipeline: {pipeline_elapsed:?} ({:.2}x vs sequential), weights bit-identical",
        sequential_elapsed.as_secs_f64() / pipeline_elapsed.as_secs_f64().max(1e-9)
    );

    // 3. A data-parallel cluster: coordinator + two token-authenticated
    //    TCP workers. Each training step is cut into two row shards; the
    //    coordinator syncs parameters, farms the shards out round-robin,
    //    and reduces the returned gradients in fixed shard order — so the
    //    wire changes wall-clock time, never the weights.
    println!("== data-parallel cluster (2 workers over loopback FF8D) ==");
    let mut coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            token: Some(CLUSTER_TOKEN.to_string()),
            ..CoordinatorConfig::default()
        },
    )?;
    let addr = coordinator.addr();
    println!("coordinator on {addr}");

    // Workers would normally run on other machines; here each gets its own
    // thread and a cold replica that ParamSync overwrites before step 0.
    let workers: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + i);
                let mut replica = small_mlp(784, &[64, 64], 10, &mut rng);
                Worker::connect(addr, CLUSTER_TOKEN, &mut replica)
            })
        })
        .collect();
    while coordinator.worker_count() < 2 {
        std::thread::sleep(Duration::from_millis(2));
    }

    // A monitoring process subscribes over a plain socket and receives the
    // typed event stream the coordinator broadcasts.
    let subscriber = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("subscribe connect");
        write_msg(&mut stream, &TrainMsg::Subscribe).expect("subscribe");
        let mut events = 0usize;
        while let Ok(TrainMsg::Event { .. }) = read_msg(&mut stream) {
            events += 1;
        }
        events
    });

    let trainer = coordinator.trainer(Precision::Int8, false, options(2))?;
    let mut clustered = fresh_net();
    let mut session = TrainSession::with_trainer(&mut clustered, &train_set, &test_set, trainer)?;
    session.on_event(|event| {
        coordinator.broadcast_event(event);
        SessionControl::Continue
    });

    // Train three steps, publish a mid-epoch FF8C checkpoint to the
    // cluster, then let the run finish.
    for _ in 0..3 {
        session.step()?;
    }
    let published = save_bytes(&session.checkpoint());
    coordinator.publish_checkpoint(published.clone());
    let history = session.run()?;
    assert_eq!(
        weight_bits(&mut clustered),
        cluster_reference,
        "data-parallel must be bit-exact vs sequential"
    );
    println!(
        "cluster trained {} epochs, final accuracy {:.1}%, weights bit-identical",
        history.len(),
        history.final_accuracy().unwrap_or(0.0) * 100.0
    );

    // Any peer can pull the published checkpoint over the wire — e.g. a
    // late-joining worker warm-starting, or an operator taking a backup.
    let mut puller = TcpStream::connect(addr)?;
    write_msg(&mut puller, &TrainMsg::PullCheckpoint)?;
    match read_msg(&mut puller)? {
        TrainMsg::CheckpointReply { bytes } => {
            assert_eq!(bytes, published, "checkpoint must round-trip verbatim");
            let restored = load_bytes(&bytes)?;
            println!(
                "pulled checkpoint: {} bytes, algorithm {}, resumable via TrainSession::resume",
                bytes.len(),
                restored.algorithm.label()
            );
        }
        other => panic!("expected CheckpointReply, got {other:?}"),
    }

    // 4. Drain the cluster: workers leave cleanly and report their share.
    coordinator.shutdown();
    for (index, handle) in workers.into_iter().enumerate() {
        let report = handle.join().expect("worker thread")?;
        println!(
            "worker {index}: computed {} shards across {} parameter syncs",
            report.shards_computed, report.params_synced
        );
    }
    let events = subscriber.join().expect("subscriber thread");
    println!("subscriber saw {events} broadcast events");
    Ok(())
}
