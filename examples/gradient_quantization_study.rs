//! Gradient-quantization study: why direct INT8 gradient quantization breaks
//! deep backpropagation, and why the Forward-Forward layout avoids it.
//!
//! Reproduces the mechanism behind the paper's Section IV-A (Fig. 3 and
//! Table I) on a small MLP: as depth grows, the first layer's gradient
//! distribution sharpens and most entries underflow to zero under symmetric
//! INT8 quantization.
//!
//! Run with: `cargo run --release --example gradient_quantization_study`

use ff_int8::data::{synthetic_mnist, SyntheticConfig};
use ff_int8::metrics::format_table;
use ff_int8::models::small_mlp;
use ff_int8::nn::{softmax_cross_entropy, ForwardMode};
use ff_int8::quant::stats::{DistributionStats, GradientHistogram};
use ff_int8::quant::{QuantConfig, QuantTensor, Rounding};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train_set, _) = synthetic_mnist(&SyntheticConfig {
        train_size: 640,
        test_size: 64,
        noise_std: 0.3,
        max_shift: 1,
        seed: 9,
    });

    let mut rows = Vec::new();
    for hidden_layers in 0..=3usize {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut net = small_mlp(784, &vec![128; hidden_layers], 10, &mut rng);
        // Accumulate first-layer gradients over a few FP32 batches.
        for batch in train_set.batches(32, true, &mut rng).iter().take(10) {
            let input = batch
                .images
                .reshape(&[batch.images.rows(), batch.images.cols()])?;
            let logits = net.forward(&input, ForwardMode::Fp32)?;
            let out = softmax_cross_entropy(&logits, &batch.labels)?;
            net.backward(&out.grad)?;
        }
        let mut params = net.params_mut();
        let grad = params
            .first_mut()
            .map(|p| p.grad.clone())
            .expect("gradient");
        let stats = DistributionStats::from_tensor(&grad);
        let quantized =
            QuantTensor::quantize_with_rng(&grad, QuantConfig::new(Rounding::Nearest), &mut rng);
        let hist = GradientHistogram::from_tensor(&grad, 33);
        println!("hidden layers = {hidden_layers}: {}", hist.to_sparkline());
        rows.push(vec![
            hidden_layers.to_string(),
            format!("{:.2e}", stats.max_abs),
            format!("{:.1}", stats.kurtosis),
            format!("{:.1}%", 100.0 * quantized.underflow_fraction(&grad)),
            format!("{:.2e}", quantized.quantization_mse(&grad)?),
        ]);
    }
    println!();
    println!(
        "{}",
        format_table(
            &[
                "Hidden layers",
                "Max |g|",
                "Kurtosis",
                "Gradients lost to 0 (INT8)",
                "Quantization MSE",
            ],
            &rows
        )
    );
    println!(
        "Deeper networks lose most of their first-layer gradient signal to INT8 underflow.\n\
         The Forward-Forward algorithm sidesteps this by training each layer with a local\n\
         loss, so no gradient ever traverses the deep backward chain."
    );
    Ok(())
}
