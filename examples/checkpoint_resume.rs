//! Interruptible edge training: checkpoint a FF-INT8 run mid-flight into a
//! versioned `FF8C` artifact, "lose power", and resume from disk — landing
//! on results bit-identical to a run that was never interrupted.
//!
//! This is the workflow the paper's edge-device setting implies: a device
//! that trains in bursts (between preemptions, duty cycles or power loss)
//! must be able to persist a run and continue it later without losing
//! epochs or changing the outcome.
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use ff_int8::core::{Algorithm, Checkpoint, SessionStatus, TrainOptions, TrainSession};
use ff_int8::data::{synthetic_mnist, SyntheticConfig};
use ff_int8::models::small_mlp;
use rand::SeedableRng;

const TOTAL_EPOCHS: usize = 6;
const CHECKPOINT_AFTER: usize = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train_set, test_set) = synthetic_mnist(&SyntheticConfig {
        train_size: 600,
        test_size: 200,
        noise_std: 0.3,
        max_shift: 1,
        seed: 3,
    });
    let options = TrainOptions {
        epochs: TOTAL_EPOCHS,
        learning_rate: 0.2,
        max_eval_samples: 200,
        ..TrainOptions::default()
    };
    let algorithm = Algorithm::FfInt8 { lookahead: true };
    let build_net = || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        small_mlp(784, &[64, 64], 10, &mut rng)
    };

    // Reference: the uninterrupted run.
    let mut reference_net = build_net();
    let reference = TrainSession::new(
        &mut reference_net,
        &train_set,
        &test_set,
        algorithm,
        &options,
    )?
    .run()?;
    println!(
        "uninterrupted: {TOTAL_EPOCHS} epochs, final accuracy {:.3}",
        reference.final_accuracy().unwrap_or(0.0)
    );

    // Interrupted run, phase 1: train two epochs, checkpoint, "lose power".
    let path = std::env::temp_dir().join("ff_int8_example.ff8c");
    {
        let mut net = build_net();
        let mut session = TrainSession::new(&mut net, &train_set, &test_set, algorithm, &options)?;
        while session.epoch() < CHECKPOINT_AFTER {
            if let SessionStatus::Finished | SessionStatus::Stopped = session.step()? {
                break;
            }
        }
        let checkpoint = session.checkpoint();
        checkpoint.save(&path)?;
        println!(
            "checkpointed after epoch {} ({} steps) into {} ({} bytes)",
            session.epoch(),
            session.global_step(),
            path.display(),
            std::fs::metadata(&path)?.len()
        );
        // Everything in this scope — network, session, trainer RNG — is
        // dropped here, exactly like a process being killed.
    }

    // Phase 2: a fresh process rebuilds the architecture (any seed — every
    // parameter is restored from the artifact) and resumes.
    let checkpoint = Checkpoint::load(&path)?;
    let mut resumed_net = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(999_999);
        small_mlp(784, &[64, 64], 10, &mut rng)
    };
    let resumed = {
        let session = TrainSession::resume(&mut resumed_net, &train_set, &test_set, &checkpoint)?;
        println!(
            "resumed at epoch {} / step {}",
            session.epoch(),
            session.global_step()
        );
        session.run()?
    };
    std::fs::remove_file(&path).ok();

    // The two runs must be indistinguishable — same per-epoch trajectory,
    // same final weights, bit for bit.
    assert!(
        reference.same_trajectory(&resumed),
        "resumed history must be bit-identical to the uninterrupted run"
    );
    let reference_bits: Vec<u32> = reference_net
        .params_mut()
        .iter()
        .flat_map(|p| p.value.data().iter().map(|v| v.to_bits()))
        .collect();
    let resumed_bits: Vec<u32> = resumed_net
        .params_mut()
        .iter()
        .flat_map(|p| p.value.data().iter().map(|v| v.to_bits()))
        .collect();
    assert_eq!(
        reference_bits, resumed_bits,
        "weights must match bit-exactly"
    );
    println!(
        "resumed:       {TOTAL_EPOCHS} epochs, final accuracy {:.3}  — bit-identical ✓",
        resumed.final_accuracy().unwrap_or(0.0)
    );
    Ok(())
}
