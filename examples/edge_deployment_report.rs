//! Edge-deployment report: estimate training time, energy and memory on the
//! Jetson Orin Nano for every training algorithm and every benchmark DNN,
//! using the analytic device model (no hardware needed).
//!
//! Run with: `cargo run --release --example edge_deployment_report`

use ff_int8::edge::{AlgorithmKind, CostModel, TrainingRun};
use ff_int8::metrics::format_table;
use ff_int8::models::specs;

fn main() {
    let model = CostModel::jetson_orin_nano();
    println!("Device: {}", model.device().name);
    let run = TrainingRun {
        batch_size: 32,
        batches_per_epoch: 1563, // CIFAR-10: 50 000 samples / batch 32
        epochs: 200,
    };

    let mut rows = Vec::new();
    for spec in specs::table2_specs() {
        for algorithm in AlgorithmKind::table5_lineup() {
            let cost = model.estimate(algorithm, &spec, &run);
            rows.push(vec![
                spec.name.clone(),
                algorithm.label().to_string(),
                format!("{:.2}", spec.param_millions()),
                format!("{:.0}", cost.time_s),
                format!("{:.0}", cost.energy_j),
                format!("{:.0}", cost.memory_mib()),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "Model",
                "Algorithm",
                "Params (M)",
                "Time (s)",
                "Energy (J)",
                "Memory (MB)"
            ],
            &rows
        )
    );

    // Headline comparison (paper abstract): FF-INT8 vs the BP-GDAI8 state of
    // the art, averaged over the four models.
    let mut time_saving = 0.0f64;
    let mut energy_saving = 0.0f64;
    let mut memory_saving = 0.0f64;
    let specs = specs::table2_specs();
    for spec in &specs {
        let ff = model.estimate(AlgorithmKind::FfInt8, spec, &run);
        let gdai8 = model.estimate(AlgorithmKind::BpGdai8, spec, &run);
        time_saving += 1.0 - ff.time_s / gdai8.time_s;
        energy_saving += 1.0 - ff.energy_j / gdai8.energy_j;
        memory_saving += 1.0 - ff.memory_mib() / gdai8.memory_mib();
    }
    let n = specs.len() as f64;
    println!(
        "FF-INT8 vs BP-GDAI8 (average over models): time -{:.1}%, energy -{:.1}%, memory -{:.1}%",
        100.0 * time_saving / n,
        100.0 * energy_saving / n,
        100.0 * memory_saving / n
    );
    println!("Paper reports: time -4.6%, energy -8.3%, memory -27.0%.");
}
